//===-- pta_test.cpp - Points-to analysis unit tests ----------------------------==//

#include "lang/Lower.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<PointsToResult> PTA;

  explicit Fixture(const std::string &Source, PTAOptions Opts = {}) {
    DiagnosticEngine Diag;
    P = compileThinJ(Source, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (P)
      PTA = runPointsTo(*P, Opts);
  }

  /// The SSA local the given source variable name resolves to in
  /// method \p MethodName (any version with a non-empty set preferred,
  /// else the last version).
  const Local *local(const std::string &MethodName,
                     const std::string &VarName) {
    Symbol Name = P->strings().lookup(VarName);
    const Local *Best = nullptr;
    for (const auto &M : P->methods()) {
      if (M->qualifiedName(P->strings()) != MethodName)
        continue;
      for (const auto &L : M->locals())
        if (L->baseName() == Name && L->version() > 0)
          Best = L.get();
    }
    return Best;
  }

  unsigned ptsSize(const std::string &MethodName, const std::string &Var) {
    const Local *L = local(MethodName, Var);
    EXPECT_NE(L, nullptr) << MethodName << "." << Var;
    return L ? PTA->pointsTo(L).count() : 0;
  }
};

} // namespace

TEST(PointsTo, AllocationAndCopies) {
  Fixture F(R"(
class A { }
def main() {
  var x = new A();
  var y = x;
  var z = new A();
  print(x == y);
  print(z == y);
}
)");
  const Local *X = F.local("main", "x");
  const Local *Y = F.local("main", "y");
  const Local *Z = F.local("main", "z");
  EXPECT_EQ(F.PTA->pointsTo(X).count(), 1u);
  EXPECT_TRUE(F.PTA->mayAlias(X, Y));
  EXPECT_FALSE(F.PTA->mayAlias(X, Z));
}

TEST(PointsTo, FieldFlow) {
  Fixture F(R"(
class Holder { var item: Object; }
def main() {
  var h1 = new Holder();
  var h2 = new Holder();
  var a = new Object();
  var b = new Object();
  h1.item = a;
  h2.item = b;
  var ra = h1.item;
  var rb = h2.item;
  print(ra == rb);
}
)");
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  // Field-sensitivity on distinct objects keeps the loads apart.
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 1u);
  EXPECT_EQ(F.PTA->pointsTo(Rb).count(), 1u);
  EXPECT_FALSE(F.PTA->mayAlias(Ra, Rb));
}

TEST(PointsTo, ArrayElementsMerge) {
  Fixture F(R"(
def main() {
  var arr = new Object[2];
  arr[0] = new Object();
  arr[1] = new Object();
  var r = arr[0];
  print(r == null);
}
)");
  // Array elements are a single partition per array object.
  EXPECT_EQ(F.ptsSize("main", "r"), 2u);
}

TEST(PointsTo, InterproceduralReturnAndParams) {
  Fixture F(R"(
class A { }
def makeA(): A { return new A(); }
def pass(x: A): A { return x; }
def main() {
  var a = makeA();
  var b = pass(a);
  print(a == b);
}
)");
  const Local *A = F.local("main", "a");
  const Local *B = F.local("main", "b");
  EXPECT_TRUE(F.PTA->mayAlias(A, B));
  EXPECT_EQ(F.PTA->pointsTo(B).count(), 1u);
}

TEST(PointsTo, OnTheFlyCallGraphNarrowerThanCHA) {
  Fixture F(R"(
class Animal { def speak(): string { return "..."; } }
class Cat extends Animal { def speak(): string { return "meow"; } }
class Dog extends Animal { def speak(): string { return "woof"; } }
def main() {
  var a: Animal = new Cat();
  print(a.speak());
}
)");
  // Only Cat.speak should be reachable; Dog.speak never.
  Method *DogSpeak =
      F.P->findClass(F.P->strings().lookup("Dog"))
          ->findOwnMethod(F.P->strings().lookup("speak"));
  ASSERT_NE(DogSpeak, nullptr);
  EXPECT_FALSE(F.PTA->callGraph().isReachable(DogSpeak));
  Method *CatSpeak =
      F.P->findClass(F.P->strings().lookup("Cat"))
          ->findOwnMethod(F.P->strings().lookup("speak"));
  EXPECT_TRUE(F.PTA->callGraph().isReachable(CatSpeak));
}

TEST(PointsTo, VirtualDispatchBindsReceiverObjectwise) {
  Fixture F(R"(
class Animal { def self(): Animal { return this; } }
class Cat extends Animal { }
class Dog extends Animal { }
def main() {
  var c: Animal = new Cat();
  var d: Animal = new Dog();
  var rc = c.self();
  var rd = d.self();
  print(rc == rd);
}
)");
  const Local *Rc = F.local("main", "rc");
  const Local *Rd = F.local("main", "rd");
  // Context-insensitive `this` merges both receivers, so both results
  // may alias — but each still contains its own object.
  EXPECT_TRUE(F.PTA->pointsTo(Rc).count() >= 1);
  EXPECT_TRUE(F.PTA->mayAlias(Rc, Rd)); // CI merging, expected.
}

TEST(PointsTo, CastFiltersByType) {
  Fixture F(R"(
class A { }
class B extends A { }
def main() {
  var box = new Object[2];
  box[0] = new A();
  box[1] = new B();
  var any = box[0];
  var b = (B) any;
  print(b == null);
}
)");
  EXPECT_EQ(F.ptsSize("main", "any"), 2u);
  EXPECT_EQ(F.ptsSize("main", "b"), 1u); // The filter dropped the A.
}

TEST(PointsTo, CastCannotFailDetection) {
  Fixture F(R"(
class A { }
class B extends A { }
def main() {
  var objs = new Object[1];
  objs[0] = new B();
  var good = (B) objs[0];
  var mixed = new Object[2];
  mixed[0] = new A();
  mixed[1] = new B();
  var risky = (B) mixed[1];
  print(good == risky);
}
)");
  std::vector<const CastInstr *> Casts;
  for (const auto &M : F.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *C = dyn_cast<CastInstr>(I.get()))
          Casts.push_back(C);
  ASSERT_EQ(Casts.size(), 2u);
  EXPECT_TRUE(F.PTA->castCannotFail(Casts[0]));
  EXPECT_FALSE(F.PTA->castCannotFail(Casts[1])); // "Tough" cast.
}

TEST(PointsTo, StaticFields) {
  Fixture F(R"(
class G {
  static var shared: Object;
}
def main() {
  G.shared = new Object();
  var r = G.shared;
  print(r == null);
}
)");
  EXPECT_EQ(F.ptsSize("main", "r"), 1u);
}

TEST(PointsTo, StringsAreObjects) {
  Fixture F(R"(
def main() {
  var s = "lit";
  var t = s.substring(0, 1);
  var u = s + t;
  var v = readLine();
  print(u.equals(v));
}
)");
  EXPECT_EQ(F.ptsSize("main", "s"), 1u);
  EXPECT_EQ(F.ptsSize("main", "t"), 1u);
  EXPECT_EQ(F.ptsSize("main", "u"), 1u);
  EXPECT_EQ(F.ptsSize("main", "v"), 1u);
  const Local *S = F.local("main", "s");
  const Local *T = F.local("main", "t");
  EXPECT_FALSE(F.PTA->mayAlias(S, T));
}

//===----------------------------------------------------------------------===//
// Object-sensitive containers (the paper's Sec. 6.1 configuration)
//===----------------------------------------------------------------------===//

namespace {

const char *TwoVectors = R"(
class Vector {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
  def get(i: int): Object { return elems[i]; }
}
class A { }
class B { }
def main() {
  var va = new Vector();
  var vb = new Vector();
  va.add(new A());
  vb.add(new B());
  var ra = va.get(0);
  var rb = vb.get(0);
  print(ra == rb);
}
)";

} // namespace

TEST(PointsTo, ObjSensSeparatesContainers) {
  Fixture F(TwoVectors);
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  // With object-sensitive cloning, va's contents never leak into vb.
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 1u);
  EXPECT_EQ(F.PTA->pointsTo(Rb).count(), 1u);
  EXPECT_FALSE(F.PTA->mayAlias(Ra, Rb));
  // The call graph has multiple (method, context) nodes for Vector.add.
  Method *Add = F.P->findClass(F.P->strings().lookup("Vector"))
                    ->findOwnMethod(F.P->strings().lookup("add"));
  EXPECT_EQ(F.PTA->callGraph().nodesOf(Add).size(), 2u);
}

TEST(PointsTo, NoObjSensMergesContainers) {
  PTAOptions Opts;
  Opts.ObjSensContainers = false;
  Fixture F(TwoVectors, Opts);
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 2u);
  EXPECT_TRUE(F.PTA->mayAlias(Ra, Rb));
}

TEST(PointsTo, PerContextQueries) {
  Fixture F(TwoVectors);
  // The merged set of `p` in Vector.add covers both objects; each
  // context sees exactly one.
  Method *Add = F.P->findClass(F.P->strings().lookup("Vector"))
                    ->findOwnMethod(F.P->strings().lookup("add"));
  const Local *PParam = nullptr;
  for (const auto &L : Add->locals())
    if (F.P->strings().str(L->baseName()) == "p" && L->version())
      PParam = L.get();
  ASSERT_NE(PParam, nullptr);
  EXPECT_EQ(F.PTA->pointsTo(PParam).count(), 2u);
  unsigned NonEmptyCtxs = 0;
  for (unsigned Node : F.PTA->callGraph().nodesOf(Add)) {
    unsigned Ctx = F.PTA->callGraph().node(Node).Ctx;
    unsigned N = F.PTA->pointsTo(PParam, Ctx).count();
    EXPECT_LE(N, 1u);
    NonEmptyCtxs += N != 0;
  }
  EXPECT_EQ(NonEmptyCtxs, 2u);
}

TEST(PointsTo, ConstraintNodeCountIsPositive) {
  Fixture F(TwoVectors);
  EXPECT_GT(F.PTA->numConstraintNodes(), 10u);
}

TEST(PointsTo, CommonObjectsForAliasExplanation) {
  Fixture F(R"(
class A { }
def main() {
  var x = new A();
  var y = x;
  var z = new A();
  print(x == y);
  print(z == null);
}
)");
  const Local *X = F.local("main", "x");
  const Local *Y = F.local("main", "y");
  const Local *Z = F.local("main", "z");
  EXPECT_EQ(F.PTA->commonObjects(X, Y).count(), 1u);
  EXPECT_EQ(F.PTA->commonObjects(X, Z).count(), 0u);
}
