//===-- pta_test.cpp - Points-to analysis unit tests ----------------------------==//

#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<PointsToResult> PTA;

  explicit Fixture(const std::string &Source, PTAOptions Opts = {}) {
    DiagnosticEngine Diag;
    P = compileThinJ(Source, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (P)
      PTA = runPointsTo(*P, Opts);
  }

  /// The SSA local the given source variable name resolves to in
  /// method \p MethodName (any version with a non-empty set preferred,
  /// else the last version).
  const Local *local(const std::string &MethodName,
                     const std::string &VarName) {
    Symbol Name = P->strings().lookup(VarName);
    const Local *Best = nullptr;
    for (const auto &M : P->methods()) {
      if (M->qualifiedName(P->strings()) != MethodName)
        continue;
      for (const auto &L : M->locals())
        if (L->baseName() == Name && L->version() > 0)
          Best = L.get();
    }
    return Best;
  }

  unsigned ptsSize(const std::string &MethodName, const std::string &Var) {
    const Local *L = local(MethodName, Var);
    EXPECT_NE(L, nullptr) << MethodName << "." << Var;
    return L ? PTA->pointsTo(L).count() : 0;
  }
};

} // namespace

TEST(PointsTo, AllocationAndCopies) {
  Fixture F(R"(
class A { }
def main() {
  var x = new A();
  var y = x;
  var z = new A();
  print(x == y);
  print(z == y);
}
)");
  const Local *X = F.local("main", "x");
  const Local *Y = F.local("main", "y");
  const Local *Z = F.local("main", "z");
  EXPECT_EQ(F.PTA->pointsTo(X).count(), 1u);
  EXPECT_TRUE(F.PTA->mayAlias(X, Y));
  EXPECT_FALSE(F.PTA->mayAlias(X, Z));
}

TEST(PointsTo, FieldFlow) {
  Fixture F(R"(
class Holder { var item: Object; }
def main() {
  var h1 = new Holder();
  var h2 = new Holder();
  var a = new Object();
  var b = new Object();
  h1.item = a;
  h2.item = b;
  var ra = h1.item;
  var rb = h2.item;
  print(ra == rb);
}
)");
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  // Field-sensitivity on distinct objects keeps the loads apart.
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 1u);
  EXPECT_EQ(F.PTA->pointsTo(Rb).count(), 1u);
  EXPECT_FALSE(F.PTA->mayAlias(Ra, Rb));
}

TEST(PointsTo, ArrayElementsMerge) {
  Fixture F(R"(
def main() {
  var arr = new Object[2];
  arr[0] = new Object();
  arr[1] = new Object();
  var r = arr[0];
  print(r == null);
}
)");
  // Array elements are a single partition per array object.
  EXPECT_EQ(F.ptsSize("main", "r"), 2u);
}

TEST(PointsTo, InterproceduralReturnAndParams) {
  Fixture F(R"(
class A { }
def makeA(): A { return new A(); }
def pass(x: A): A { return x; }
def main() {
  var a = makeA();
  var b = pass(a);
  print(a == b);
}
)");
  const Local *A = F.local("main", "a");
  const Local *B = F.local("main", "b");
  EXPECT_TRUE(F.PTA->mayAlias(A, B));
  EXPECT_EQ(F.PTA->pointsTo(B).count(), 1u);
}

TEST(PointsTo, OnTheFlyCallGraphNarrowerThanCHA) {
  Fixture F(R"(
class Animal { def speak(): string { return "..."; } }
class Cat extends Animal { def speak(): string { return "meow"; } }
class Dog extends Animal { def speak(): string { return "woof"; } }
def main() {
  var a: Animal = new Cat();
  print(a.speak());
}
)");
  // Only Cat.speak should be reachable; Dog.speak never.
  Method *DogSpeak =
      F.P->findClass(F.P->strings().lookup("Dog"))
          ->findOwnMethod(F.P->strings().lookup("speak"));
  ASSERT_NE(DogSpeak, nullptr);
  EXPECT_FALSE(F.PTA->callGraph().isReachable(DogSpeak));
  Method *CatSpeak =
      F.P->findClass(F.P->strings().lookup("Cat"))
          ->findOwnMethod(F.P->strings().lookup("speak"));
  EXPECT_TRUE(F.PTA->callGraph().isReachable(CatSpeak));
}

TEST(PointsTo, VirtualDispatchBindsReceiverObjectwise) {
  Fixture F(R"(
class Animal { def self(): Animal { return this; } }
class Cat extends Animal { }
class Dog extends Animal { }
def main() {
  var c: Animal = new Cat();
  var d: Animal = new Dog();
  var rc = c.self();
  var rd = d.self();
  print(rc == rd);
}
)");
  const Local *Rc = F.local("main", "rc");
  const Local *Rd = F.local("main", "rd");
  // Context-insensitive `this` merges both receivers, so both results
  // may alias — but each still contains its own object.
  EXPECT_TRUE(F.PTA->pointsTo(Rc).count() >= 1);
  EXPECT_TRUE(F.PTA->mayAlias(Rc, Rd)); // CI merging, expected.
}

TEST(PointsTo, CastFiltersByType) {
  Fixture F(R"(
class A { }
class B extends A { }
def main() {
  var box = new Object[2];
  box[0] = new A();
  box[1] = new B();
  var any = box[0];
  var b = (B) any;
  print(b == null);
}
)");
  EXPECT_EQ(F.ptsSize("main", "any"), 2u);
  EXPECT_EQ(F.ptsSize("main", "b"), 1u); // The filter dropped the A.
}

TEST(PointsTo, CastCannotFailDetection) {
  Fixture F(R"(
class A { }
class B extends A { }
def main() {
  var objs = new Object[1];
  objs[0] = new B();
  var good = (B) objs[0];
  var mixed = new Object[2];
  mixed[0] = new A();
  mixed[1] = new B();
  var risky = (B) mixed[1];
  print(good == risky);
}
)");
  std::vector<const CastInstr *> Casts;
  for (const auto &M : F.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *C = dyn_cast<CastInstr>(I.get()))
          Casts.push_back(C);
  ASSERT_EQ(Casts.size(), 2u);
  EXPECT_TRUE(F.PTA->castCannotFail(Casts[0]));
  EXPECT_FALSE(F.PTA->castCannotFail(Casts[1])); // "Tough" cast.
}

TEST(PointsTo, StaticFields) {
  Fixture F(R"(
class G {
  static var shared: Object;
}
def main() {
  G.shared = new Object();
  var r = G.shared;
  print(r == null);
}
)");
  EXPECT_EQ(F.ptsSize("main", "r"), 1u);
}

TEST(PointsTo, StringsAreObjects) {
  Fixture F(R"(
def main() {
  var s = "lit";
  var t = s.substring(0, 1);
  var u = s + t;
  var v = readLine();
  print(u.equals(v));
}
)");
  EXPECT_EQ(F.ptsSize("main", "s"), 1u);
  EXPECT_EQ(F.ptsSize("main", "t"), 1u);
  EXPECT_EQ(F.ptsSize("main", "u"), 1u);
  EXPECT_EQ(F.ptsSize("main", "v"), 1u);
  const Local *S = F.local("main", "s");
  const Local *T = F.local("main", "t");
  EXPECT_FALSE(F.PTA->mayAlias(S, T));
}

//===----------------------------------------------------------------------===//
// Object-sensitive containers (the paper's Sec. 6.1 configuration)
//===----------------------------------------------------------------------===//

namespace {

const char *TwoVectors = R"(
class Vector {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
  def get(i: int): Object { return elems[i]; }
}
class A { }
class B { }
def main() {
  var va = new Vector();
  var vb = new Vector();
  va.add(new A());
  vb.add(new B());
  var ra = va.get(0);
  var rb = vb.get(0);
  print(ra == rb);
}
)";

} // namespace

TEST(PointsTo, ObjSensSeparatesContainers) {
  Fixture F(TwoVectors);
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  // With object-sensitive cloning, va's contents never leak into vb.
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 1u);
  EXPECT_EQ(F.PTA->pointsTo(Rb).count(), 1u);
  EXPECT_FALSE(F.PTA->mayAlias(Ra, Rb));
  // The call graph has multiple (method, context) nodes for Vector.add.
  Method *Add = F.P->findClass(F.P->strings().lookup("Vector"))
                    ->findOwnMethod(F.P->strings().lookup("add"));
  EXPECT_EQ(F.PTA->callGraph().nodesOf(Add).size(), 2u);
}

TEST(PointsTo, NoObjSensMergesContainers) {
  PTAOptions Opts;
  Opts.ObjSensContainers = false;
  Fixture F(TwoVectors, Opts);
  const Local *Ra = F.local("main", "ra");
  const Local *Rb = F.local("main", "rb");
  EXPECT_EQ(F.PTA->pointsTo(Ra).count(), 2u);
  EXPECT_TRUE(F.PTA->mayAlias(Ra, Rb));
}

TEST(PointsTo, PerContextQueries) {
  Fixture F(TwoVectors);
  // The merged set of `p` in Vector.add covers both objects; each
  // context sees exactly one.
  Method *Add = F.P->findClass(F.P->strings().lookup("Vector"))
                    ->findOwnMethod(F.P->strings().lookup("add"));
  const Local *PParam = nullptr;
  for (const auto &L : Add->locals())
    if (F.P->strings().str(L->baseName()) == "p" && L->version())
      PParam = L.get();
  ASSERT_NE(PParam, nullptr);
  EXPECT_EQ(F.PTA->pointsTo(PParam).count(), 2u);
  unsigned NonEmptyCtxs = 0;
  for (unsigned Node : F.PTA->callGraph().nodesOf(Add)) {
    unsigned Ctx = F.PTA->callGraph().node(Node).Ctx;
    unsigned N = F.PTA->pointsTo(PParam, Ctx).count();
    EXPECT_LE(N, 1u);
    NonEmptyCtxs += N != 0;
  }
  EXPECT_EQ(NonEmptyCtxs, 2u);
}

TEST(PointsTo, ConstraintNodeCountIsPositive) {
  Fixture F(TwoVectors);
  EXPECT_GT(F.PTA->numConstraintNodes(), 10u);
}

//===----------------------------------------------------------------------===//
// Differential solver testing: every optimization combination must
// produce results identical to the naive full-set FIFO solver.
//===----------------------------------------------------------------------===//

namespace {

/// Stable per-program instruction names (object/context ids are
/// assigned in solver-visit order, so raw ids cannot be compared
/// across solver configurations).
std::unordered_map<const Instr *, std::string> nameSites(const Program &P) {
  std::unordered_map<const Instr *, std::string> Names;
  for (const auto &M : P.methods()) {
    unsigned Idx = 0;
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        Names[I.get()] = M->qualifiedName(P.strings()) + "#" +
                         std::to_string(Idx++);
  }
  return Names;
}

/// Canonical name of an abstract object: its allocation site plus the
/// recursively canonicalized allocation-context chain.
std::string objKey(const PointsToResult &R,
                   const std::unordered_map<const Instr *, std::string> &Names,
                   unsigned Obj) {
  const AbstractObject &O = R.objects()[Obj];
  std::string Key = Names.at(O.Site);
  if (O.AllocCtx != 0)
    Key += "@[" + objKey(R, Names, R.contextObject(O.AllocCtx)) + "]";
  return Key;
}

struct CanonicalResult {
  /// Merged points-to set per local, as canonical object names.
  std::map<const Local *, std::set<std::string>> Pts;
  /// Call graph edges as canonical (caller, site, callee) strings.
  std::set<std::string> CGEdges;
  /// castCannotFail verdict per cast instruction.
  std::map<const Instr *, bool> Casts;
};

CanonicalResult canonicalize(const Program &P, const PointsToResult &R) {
  CanonicalResult Out;
  auto Names = nameSites(P);

  for (const auto &M : P.methods())
    for (const auto &L : M->locals()) {
      const BitSet &S = R.pointsTo(L.get());
      if (S.empty())
        continue;
      std::set<std::string> &Keys = Out.Pts[L.get()];
      S.forEach([&](unsigned Obj) { Keys.insert(objKey(R, Names, Obj)); });
    }

  const CallGraph &CG = R.callGraph();
  auto nodeKey = [&](unsigned NodeId) {
    const MethodCtx &MC = CG.node(NodeId);
    std::string Key = MC.M->qualifiedName(P.strings());
    if (MC.Ctx != 0)
      Key += "@[" + objKey(R, Names, R.contextObject(MC.Ctx)) + "]";
    return Key;
  };
  for (const CallEdge &E : CG.edges())
    Out.CGEdges.insert(nodeKey(E.CallerNode) + " --" + Names.at(E.Site) +
                       "--> " + nodeKey(E.CalleeNode));

  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *C = dyn_cast<CastInstr>(I.get()))
          Out.Casts[C] = R.castCannotFail(C);

  return Out;
}

struct SolverConfig {
  bool Delta;
  bool CycleElim;
  WorklistPolicy Policy;
  std::string name() const {
    std::string N = Delta ? "delta" : "full";
    N += CycleElim ? "+lcd" : "";
    N += Policy == WorklistPolicy::FIFO ? "+fifo"
         : Policy == WorklistPolicy::LRF ? "+lrf"
                                         : "+topo";
    return N;
  }
};

std::vector<SolverConfig> allSolverConfigs() {
  std::vector<SolverConfig> Out;
  for (bool Delta : {false, true})
    for (bool CE : {false, true})
      for (WorklistPolicy Pol :
           {WorklistPolicy::FIFO, WorklistPolicy::LRF, WorklistPolicy::Topo})
        Out.push_back({Delta, CE, Pol});
  return Out;
}

void expectAllConfigsAgree(const std::string &CaseId,
                           const std::string &Source) {
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << CaseId << ": " << Diag.str();

  PTAOptions NaiveOpts;
  NaiveOpts.DeltaPropagation = false;
  NaiveOpts.CycleElimination = false;
  NaiveOpts.Policy = WorklistPolicy::FIFO;
  std::unique_ptr<PointsToResult> Naive = runPointsTo(*P, NaiveOpts);
  CanonicalResult Base = canonicalize(*P, *Naive);

  for (const SolverConfig &C : allSolverConfigs()) {
    PTAOptions Opts;
    Opts.DeltaPropagation = C.Delta;
    Opts.CycleElimination = C.CycleElim;
    Opts.Policy = C.Policy;
    std::unique_ptr<PointsToResult> R = runPointsTo(*P, Opts);
    CanonicalResult Got = canonicalize(*P, *R);

    EXPECT_EQ(Base.Pts, Got.Pts)
        << CaseId << " [" << C.name() << "]: merged points-to sets differ";
    EXPECT_EQ(Base.CGEdges, Got.CGEdges)
        << CaseId << " [" << C.name() << "]: call graph edges differ";
    EXPECT_EQ(Base.Casts, Got.Casts)
        << CaseId << " [" << C.name() << "]: cast verdicts differ";
  }
}

} // namespace

TEST(PointsToDifferential, DebuggingWorkloads) {
  for (const BugCase &Case : debuggingCases())
    expectAllConfigsAgree(Case.Id, Case.Prog.Source);
}

TEST(PointsToDifferential, ToughCastWorkloads) {
  for (const CastCase &Case : toughCastCases())
    expectAllConfigsAgree(Case.Id, Case.Prog.Source);
}

TEST(PointsToDifferential, StatsAreCoherent) {
  Fixture F(TwoVectors);
  const SolverStats &S = F.PTA->stats();
  EXPECT_GT(S.NumNodes, 0u);
  EXPECT_LE(S.NumRepNodes, S.NumNodes);
  EXPECT_GT(S.NumObjects, 0u);
  EXPECT_GT(S.WorklistPops, 0u);
  EXPECT_EQ(S.NumNodes, F.PTA->numConstraintNodes());
  // Merging is what shrinks the representative count.
  EXPECT_EQ(S.NumNodes - S.NumRepNodes, S.NodesMerged);
  EXPECT_FALSE(S.str().empty());
}

TEST(PointsTo, CommonObjectsForAliasExplanation) {
  Fixture F(R"(
class A { }
def main() {
  var x = new A();
  var y = x;
  var z = new A();
  print(x == y);
  print(z == null);
}
)");
  const Local *X = F.local("main", "x");
  const Local *Y = F.local("main", "y");
  const Local *Z = F.local("main", "z");
  EXPECT_EQ(F.PTA->commonObjects(X, Y).count(), 1u);
  EXPECT_EQ(F.PTA->commonObjects(X, Z).count(), 0u);
}
