//===-- lexer_test.cpp - Lexer unit tests ---------------------------------------==//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

std::vector<Token> lexAll(const std::string &Source, DiagnosticEngine &Diag) {
  Lexer L(Source, Diag);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    bool IsEof = T.is(TokKind::Eof);
    Out.push_back(std::move(T));
    if (IsEof)
      break;
  }
  return Out;
}

std::vector<TokKind> kindsOf(const std::string &Source) {
  DiagnosticEngine Diag;
  std::vector<TokKind> Out;
  for (const Token &T : lexAll(Source, Diag))
    Out.push_back(T.Kind);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  return Out;
}

} // namespace

TEST(Lexer, Keywords) {
  EXPECT_EQ(kindsOf("class def var"),
            (std::vector<TokKind>{TokKind::KwClass, TokKind::KwDef,
                                  TokKind::KwVar, TokKind::Eof}));
  EXPECT_EQ(kindsOf("if else while for return"),
            (std::vector<TokKind>{TokKind::KwIf, TokKind::KwElse,
                                  TokKind::KwWhile, TokKind::KwFor,
                                  TokKind::KwReturn, TokKind::Eof}));
}

TEST(Lexer, IdentifiersVsKeywords) {
  DiagnosticEngine Diag;
  auto Toks = lexAll("classy if0 _x $gen", Diag);
  ASSERT_EQ(Toks.size(), 5u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Toks[I].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[0].Text, "classy");
  EXPECT_EQ(Toks[1].Text, "if0");
  EXPECT_EQ(Toks[2].Text, "_x");
  EXPECT_EQ(Toks[3].Text, "$gen");
}

TEST(Lexer, Numbers) {
  DiagnosticEngine Diag;
  auto Toks = lexAll("0 42 123456789", Diag);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 123456789);
}

TEST(Lexer, StringsAndEscapes) {
  DiagnosticEngine Diag;
  auto Toks = lexAll(R"("hello" "a\nb" "q\"q" "back\\slash")", Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Text, "hello");
  EXPECT_EQ(Toks[1].Text, "a\nb");
  EXPECT_EQ(Toks[2].Text, "q\"q");
  EXPECT_EQ(Toks[3].Text, "back\\slash");
}

TEST(Lexer, UnterminatedString) {
  DiagnosticEngine Diag;
  lexAll("\"oops", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Lexer, OperatorsMaximalMunch) {
  EXPECT_EQ(kindsOf("== = != ! <= < >= > && ||"),
            (std::vector<TokKind>{TokKind::EqEq, TokKind::Assign,
                                  TokKind::NotEq, TokKind::Bang, TokKind::Le,
                                  TokKind::Lt, TokKind::Ge, TokKind::Gt,
                                  TokKind::AmpAmp, TokKind::PipePipe,
                                  TokKind::Eof}));
}

TEST(Lexer, CommentsAreSkipped) {
  EXPECT_EQ(kindsOf("a // comment with stuff == != \"notastring\n b"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                  TokKind::Eof}));
}

TEST(Lexer, PositionsTrackLinesAndColumns) {
  DiagnosticEngine Diag;
  auto Toks = lexAll("a\n  b\n\nc", Diag);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
  EXPECT_EQ(Toks[2].Loc.Line, 4u);
}

TEST(Lexer, UnknownCharacterIsError) {
  DiagnosticEngine Diag;
  auto Toks = lexAll("a # b", Diag);
  EXPECT_TRUE(Diag.hasErrors());
  // The error token is produced but lexing continues.
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(Lexer, SingleAmpIsError) {
  DiagnosticEngine Diag;
  lexAll("a & b", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Lexer, EofIsSticky) {
  DiagnosticEngine Diag;
  Lexer L("x", Diag);
  EXPECT_EQ(L.next().Kind, TokKind::Ident);
  EXPECT_EQ(L.next().Kind, TokKind::Eof);
  EXPECT_EQ(L.next().Kind, TokKind::Eof);
}
