//===-- ir_test.cpp - IR model unit tests ---------------------------------------==//

#include "ir/IRPrinter.h"
#include "ir/Instr.h"
#include "ir/Program.h"
#include "ir/SSA.h"
#include "ir/Types.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace tsl;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(Types, PrimitivesAreInterned) {
  TypeTable T;
  EXPECT_EQ(T.intType(), T.intType());
  EXPECT_NE(T.intType(), T.boolType());
  EXPECT_TRUE(T.intType()->isInt());
  EXPECT_TRUE(T.stringType()->isReference());
  EXPECT_FALSE(T.intType()->isReference());
  EXPECT_TRUE(T.nullType()->isReference());
}

TEST(Types, ArrayInterning) {
  TypeTable T;
  const Type *IntArr = T.arrayType(T.intType());
  EXPECT_EQ(IntArr, T.arrayType(T.intType()));
  EXPECT_NE(IntArr, T.arrayType(T.boolType()));
  const Type *IntArrArr = T.arrayType(IntArr);
  EXPECT_EQ(IntArrArr->element(), IntArr);
  EXPECT_EQ(IntArrArr->str(), "int[][]");
}

TEST(Types, ClassTypes) {
  Program P;
  ClassDef *C = P.addClass(P.strings().intern("Foo"));
  const Type *Ty = P.types().classType(C);
  EXPECT_EQ(Ty, P.types().classType(C));
  EXPECT_EQ(Ty->classDef(), C);
  EXPECT_TRUE(Ty->isClass());
}

//===----------------------------------------------------------------------===//
// Program model
//===----------------------------------------------------------------------===//

TEST(ProgramModel, ObjectClassExists) {
  Program P;
  ASSERT_NE(P.objectClass(), nullptr);
  EXPECT_EQ(P.strings().str(P.objectClass()->name()), "Object");
  EXPECT_EQ(P.objectClass()->superclass(), nullptr);
}

TEST(ProgramModel, HierarchyLookups) {
  Program P;
  ClassDef *A = P.addClass(P.strings().intern("A"));
  ClassDef *B = P.addClass(P.strings().intern("B"));
  A->setSuperclass(P.objectClass());
  B->setSuperclass(A);

  Field *F = P.addField(P.strings().intern("f"), P.types().intType(), A,
                        /*IsStatic=*/false);
  Method *M = P.addMethod(P.strings().intern("m"), A, /*IsStatic=*/false,
                          P.types().voidType(), {});

  EXPECT_EQ(B->findField(F->name()), F);
  EXPECT_EQ(B->findOwnField(F->name()), nullptr);
  EXPECT_EQ(B->findMethod(M->name()), M);
  EXPECT_TRUE(B->isSubclassOf(A));
  EXPECT_TRUE(B->isSubclassOf(P.objectClass()));
  EXPECT_FALSE(A->isSubclassOf(B));
}

TEST(ProgramModel, MethodOverrideShadowsInLookup) {
  Program P;
  ClassDef *A = P.addClass(P.strings().intern("A"));
  ClassDef *B = P.addClass(P.strings().intern("B"));
  B->setSuperclass(A);
  Symbol Name = P.strings().intern("m");
  Method *MA = P.addMethod(Name, A, false, P.types().voidType(), {});
  Method *MB = P.addMethod(Name, B, false, P.types().voidType(), {});
  EXPECT_EQ(A->findMethod(Name), MA);
  EXPECT_EQ(B->findMethod(Name), MB);
}

//===----------------------------------------------------------------------===//
// CFG plumbing
//===----------------------------------------------------------------------===//

TEST(CFG, RenumberComputesPredecessors) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(), {});
  BasicBlock *Entry = M->addBlock();
  BasicBlock *Then = M->addBlock();
  BasicBlock *Join = M->addBlock();
  M->setEntry(Entry);

  Local *Cond = M->addLocal(0, P.types().boolType(), true);
  Entry->append(std::make_unique<ConstBoolInstr>(Cond, true));
  Entry->append(std::make_unique<BranchInstr>(Cond, Then, Join));
  Then->append(std::make_unique<GotoInstr>(Join));
  Join->append(std::make_unique<RetInstr>(nullptr));
  M->renumber();

  EXPECT_EQ(Entry->preds().size(), 0u);
  EXPECT_EQ(Then->preds().size(), 1u);
  EXPECT_EQ(Join->preds().size(), 2u);
  EXPECT_EQ(M->numInstrs(), 4u);
  // Instruction ids are dense and ordered.
  EXPECT_EQ(M->instrs()[0]->id(), 0u);
  EXPECT_EQ(M->instrs()[3]->id(), 3u);
}

TEST(CFG, BranchToSameTargetHasOneSuccessor) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(), {});
  BasicBlock *Entry = M->addBlock();
  BasicBlock *Next = M->addBlock();
  M->setEntry(Entry);
  Local *Cond = M->addLocal(0, P.types().boolType(), true);
  Entry->append(std::make_unique<ConstBoolInstr>(Cond, true));
  Entry->append(std::make_unique<BranchInstr>(Cond, Next, Next));
  Next->append(std::make_unique<RetInstr>(nullptr));
  EXPECT_EQ(Entry->successors().size(), 1u);
}

TEST(CFG, RemoveUnreachableBlocks) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(), {});
  BasicBlock *Entry = M->addBlock();
  BasicBlock *Dead = M->addBlock();
  M->setEntry(Entry);
  Entry->append(std::make_unique<RetInstr>(nullptr));
  Dead->append(std::make_unique<RetInstr>(nullptr));
  M->removeUnreachableBlocks();
  EXPECT_EQ(M->blocks().size(), 1u);
  EXPECT_EQ(M->entry()->id(), 0u);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

TEST(Printer, RendersRecognizableText) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
class Pair {
  var fst: int;
  def init(a: int) { fst = a; }
}
def main() {
  var p = new Pair(3);
  print(p.fst);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  std::string Text = printProgram(*P);
  EXPECT_NE(Text.find("new Pair"), std::string::npos);
  EXPECT_NE(Text.find(".fst"), std::string::npos);
  EXPECT_NE(Text.find("print("), std::string::npos);
  EXPECT_NE(Text.find("param#"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SSA form
//===----------------------------------------------------------------------===//

TEST(SSA, PhiAtLoopHeader) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var x = 0;
  while (x < 10) { x = x + 1; }
  print(x);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  const Method *Main = P->mainMethod();
  unsigned Phis = 0;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instrs())
      Phis += isa<PhiInstr>(I.get());
  EXPECT_GE(Phis, 1u);
  EXPECT_TRUE(Main->isSSA());
  EXPECT_TRUE(verifyProgram(*P).empty());
}

TEST(SSA, NoPhiForStraightLineCode) {
  DiagnosticEngine Diag;
  auto P = compileThinJ("def main() { var x = 1; x = 2; print(x); }", Diag);
  ASSERT_NE(P, nullptr);
  unsigned Phis = 0;
  for (const auto &BB : P->mainMethod()->blocks())
    for (const auto &I : BB->instrs())
      Phis += isa<PhiInstr>(I.get());
  EXPECT_EQ(Phis, 0u);
  // Each definition got its own version.
  bool SawV2 = false;
  for (const auto &L : P->mainMethod()->locals())
    SawV2 |= L->version() == 2;
  EXPECT_TRUE(SawV2);
}

TEST(SSA, UniqueDefs) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var x = 0;
  if (readInt() > 0) { x = 1; } else { x = 2; }
  print(x);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr);
  // Verifier checks unique defs + dominance; just re-run it.
  EXPECT_TRUE(verifyProgram(*P).empty());
  // The use of x at print must be a phi result.
  const Method *Main = P->mainMethod();
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instrs())
      if (isa<PrintInstr>(I.get())) {
        const Instr *Def = I->operand(0)->def();
        // print("...") of x: the operand chain leads through a phi.
        // (The operand may be x itself.)
        EXPECT_NE(Def, nullptr);
      }
}

//===----------------------------------------------------------------------===//
// Verifier negative cases
//===----------------------------------------------------------------------===//

TEST(Verifier, CatchesMissingTerminator) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(), {});
  BasicBlock *Entry = M->addBlock();
  M->setEntry(Entry);
  Local *X = M->addLocal(0, P.types().intType(), true);
  Entry->append(std::make_unique<ConstIntInstr>(X, 1));
  M->renumber();
  auto V = verifyMethod(P, *M);
  ASSERT_FALSE(V.empty());
  EXPECT_NE(V.front().find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesMissingParams) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(),
                          {{P.strings().intern("x"), P.types().intType()}});
  BasicBlock *Entry = M->addBlock();
  M->setEntry(Entry);
  Entry->append(std::make_unique<RetInstr>(nullptr));
  M->renumber();
  auto V = verifyMethod(P, *M);
  ASSERT_FALSE(V.empty());
  EXPECT_NE(V.front().find("param"), std::string::npos);
}

TEST(Verifier, CatchesDoubleDefInSSA) {
  Program P;
  Method *M = P.addMethod(P.strings().intern("f"), nullptr, true,
                          P.types().voidType(), {});
  BasicBlock *Entry = M->addBlock();
  M->setEntry(Entry);
  Local *X = M->addLocal(0, P.types().intType(), true);
  Entry->append(std::make_unique<ConstIntInstr>(X, 1));
  Entry->append(std::make_unique<ConstIntInstr>(X, 2));
  Entry->append(std::make_unique<RetInstr>(nullptr));
  M->renumber();
  M->setSSA(true);
  auto V = verifyMethod(P, *M);
  ASSERT_FALSE(V.empty());
  bool Found = false;
  for (const std::string &Msg : V)
    Found |= Msg.find("more than once") != std::string::npos;
  EXPECT_TRUE(Found);
}
