//===-- coverage_test.cpp - Edge-case coverage across modules -------------------==//

#include "cg/CallGraph.h"
#include "dyn/Interp.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "modref/ModRef.h"
#include "sdg/SDGDot.h"
#include "slicer/Inspection.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }
};

InterpResult runSource(const std::string &Source, InterpOptions Opts = {}) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(Source, Diag);
  EXPECT_NE(P, nullptr) << Diag.str();
  if (!P)
    return {};
  return interpret(*P, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter string edge cases
//===----------------------------------------------------------------------===//

TEST(Coverage, StringEdgeCases) {
  InterpResult R = runSource(R"(
def main() {
  var s = "needle in haystack";
  print(s.indexOf("missing"));
  print(s.indexOf(""));
  print(s.substring(0, 0));
  print("".length());
  print("".equals(""));
  print("a".equals("b"));
  var empty = "" + "";
  print(empty.length());
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"-1", "0", "", "0", "true",
                                                "false", "0"}));
}

TEST(Coverage, NegativeNumbersAndRemainders) {
  InterpResult R = runSource(R"(
def main() {
  print(-7 / 2);
  print(-7 % 2);
  print(0 - 2147483647);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<std::string>{"-3", "-1", "-2147483647"}));
}

TEST(Coverage, VirtualDispatchThreeLevels) {
  InterpResult R = runSource(R"(
class A { def who(): string { return "A"; } }
class B extends A { def who(): string { return "B"; } }
class C extends B { }
def main() {
  var objs = new Object[3];
  objs[0] = new A();
  objs[1] = new B();
  objs[2] = new C();
  for (var i = 0; i < 3; i = i + 1) {
    var a = (A) objs[i];
    print(a.who());
  }
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  // C inherits B's override.
  EXPECT_EQ(R.Output, (std::vector<std::string>{"A", "B", "B"}));
}

//===----------------------------------------------------------------------===//
// Call graph queries
//===----------------------------------------------------------------------===//

TEST(Coverage, CallersOfQuery) {
  Fixture F(R"(
def shared(): int { return 1; }
def a(): int { return shared(); }
def b(): int { return shared(); }
def main() { print(a() + b()); }
)");
  Method *Shared = nullptr;
  for (const auto &M : F.P->methods())
    if (M->qualifiedName(F.P->strings()) == "shared")
      Shared = M.get();
  ASSERT_NE(Shared, nullptr);
  auto Callers = F.PTA->callGraph().callersOf(Shared);
  EXPECT_EQ(Callers.size(), 2u);
}

TEST(Coverage, CalleeNodesOfVirtualSite) {
  Fixture F(R"(
class A { def m(): int { return 1; } }
class B extends A { def m(): int { return 2; } }
def main() {
  var objs = new A[2];
  objs[0] = new A();
  objs[1] = new B();
  var x = objs[0];
  print(x.m());
}
)");
  const CallInstr *Site = nullptr;
  for (const auto &M : F.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (const auto *C = dyn_cast<CallInstr>(I.get()))
          if (C->isVirtual())
            Site = C;
  ASSERT_NE(Site, nullptr);
  // Both A.m and B.m are possible (array elements merge).
  EXPECT_EQ(F.PTA->callGraph().calleesOf(Site).size(), 2u);
  EXPECT_EQ(F.PTA->callGraph().calleeNodesOf(Site).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Slicer API corners
//===----------------------------------------------------------------------===//

TEST(Coverage, SliceBackwardNodesSingleClone) {
  Fixture F(R"(
class Vector {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
}
def main() {
  var v1 = new Vector();
  var v2 = new Vector();
  v1.add("a");
  v2.add(readLine());
}
)");
  // The array store in Vector.add has two clones; node-level slicing from
  // one clone must not include the other context's producers.
  const Instr *Store = nullptr;
  for (const auto &M : F.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<ArrayStoreInstr>(I.get()))
          Store = I.get();
  ASSERT_NE(Store, nullptr);
  const auto &Clones = F.G->nodesFor(Store);
  ASSERT_EQ(Clones.size(), 2u);
  SliceResult S0 = sliceBackwardNodes(*F.G, {Clones[0]}, SliceMode::Thin);
  SliceResult S1 = sliceBackwardNodes(*F.G, {Clones[1]}, SliceMode::Thin);
  // One clone's slice has the literal, the other the readLine; they
  // are not equal and their union equals the statement-level slice.
  EXPECT_TRUE(S0.nodeSet() != S1.nodeSet());
  SliceResult Both = sliceBackward(*F.G, Store, SliceMode::Thin);
  BitSet Union = S0.nodeSet();
  Union.unionWith(S1.nodeSet());
  EXPECT_TRUE(Union == Both.nodeSet());
}

TEST(Coverage, DfsInspectionFindsSameTargets) {
  Fixture F(R"(
def main() {
  var a = readInt();
  var b = a * 2;
  var c = b - a;
  print(c);
}
)");
  for (auto Strategy : {InspectionStrategy::BFS, InspectionStrategy::DFS}) {
    InspectionQuery Q;
    Q.Seed = F.lastAtLine(6);
    Q.Mode = SliceMode::Thin;
    Q.Strategy = Strategy;
    SourceLine Target{F.P->mainMethod(), 3};
    Q.Desired = {Target};
    InspectionResult R = simulateInspection(*F.G, Q);
    EXPECT_TRUE(R.FoundAll);
    EXPECT_GE(R.InspectedStatements, 2u);
  }
}

TEST(Coverage, InspectionOrderStartsAtSeedLine) {
  Fixture F(R"(
def main() {
  var a = 1;
  print(a);
}
)");
  InspectionResult R = simulateInspection(
      *F.G, F.lastAtLine(4), SliceMode::Thin,
      std::vector<SourceLine>{{F.P->mainMethod(), 3}});
  ASSERT_GE(R.Order.size(), 2u);
  EXPECT_EQ(R.Order[0].Line, 4u);
  EXPECT_EQ(R.Order[1].Line, 3u);
}

//===----------------------------------------------------------------------===//
// Dot export of the context-sensitive graph
//===----------------------------------------------------------------------===//

TEST(Coverage, DotShowsHeapParamsWhenAsked) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
class Cell { var v: Object; }
def put(c: Cell) { c.v = new Object(); }
def main() {
  var c = new Cell();
  put(c);
  print(c.v == null);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  auto PTA = runPointsTo(*P);
  ModRefResult MR(*P, *PTA);
  SDGOptions Opts;
  Opts.ContextSensitive = true;
  auto CS = buildSDG(*P, *PTA, &MR, Opts);
  DotOptions DO;
  DO.SourceStmtsOnly = false;
  std::string Dot = exportDot(*CS, DO);
  EXPECT_NE(Dot.find("heap param"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dynamic trace corners
//===----------------------------------------------------------------------===//

TEST(Coverage, LastInstanceOfPicksTheLatest) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var x = 0;
  for (var i = 0; i < 3; i = i + 1) {
    x = i * 10;
  }
  print(x);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr);
  InterpOptions Opts;
  Opts.TraceDeps = true;
  InterpResult R = interpret(*P, Opts);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Output.front(), "20");
  // The assignment executed three times; the dynamic slice of the
  // print uses the last instance (i == 2).
  const Instr *Print = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Print = I.get();
  auto Stmts = R.Trace.dynamicThinSliceOfLast(Print);
  EXPECT_FALSE(Stmts.empty());
}
