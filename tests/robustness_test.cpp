//===-- robustness_test.cpp - Frontend robustness / fuzz-ish tests --------------==//
//
// The frontend must never crash: arbitrary bytes, truncated programs,
// deeply nested expressions, and pathological-but-valid inputs all
// either compile or produce diagnostics.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

/// Compiles and, on success, verifies; never crashes.
void compileAnything(const std::string &Source) {
  DiagnosticEngine Diag;
  CompileOptions Opts;
  Opts.RequireMain = false;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  if (P)
    EXPECT_TRUE(verifyProgram(*P).empty());
  else
    EXPECT_TRUE(Diag.hasErrors());
}

} // namespace

TEST(Robustness, ArbitraryBytes) {
  uint64_t S = 0x12345;
  auto Next = [&S]() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (int Round = 0; Round != 200; ++Round) {
    std::string Junk;
    unsigned Len = Next() % 200;
    for (unsigned I = 0; I != Len; ++I)
      Junk += static_cast<char>(32 + Next() % 95); // Printable ASCII.
    compileAnything(Junk);
  }
}

TEST(Robustness, TruncatedRealProgram) {
  const std::string Full = R"(
class Box {
  var v: Object;
  def set(x: Object) { v = x; }
}
def main() {
  var b = new Box();
  b.set("payload");
  if (b.v != null) {
    print("ok");
  }
}
)";
  for (size_t Len = 0; Len <= Full.size(); Len += 7)
    compileAnything(Full.substr(0, Len));
}

TEST(Robustness, TokenSoup) {
  // Valid tokens in invalid orders.
  const char *Soups[] = {
      "def def def",
      "class A extends A extends A { }",
      "def f() { return return; }",
      "def f() { if while for }",
      "def f() { var x = ((((((1)))))); }",
      "def f() { x = = 3; }",
      "class { var : ; def ( ) }",
      "def f() { a.b.c.d.e.f.g.h(); }",
      "def f() { \"unterminated }",
      "def f(x: int[][][][][]) { }",
      "super(1); def main() { }",
      "def f() { (Foo) (Bar) (Baz) x; }",
  };
  for (const char *Soup : Soups)
    compileAnything(Soup);
}

TEST(Robustness, DeepNesting) {
  // Deeply nested blocks/ifs stress scoping and CFG construction.
  std::string Source = "def main() {\n  var x = 0;\n";
  for (int I = 0; I != 200; ++I)
    Source += "  if (x == " + std::to_string(I) + ") {\n";
  Source += "    x = x + 1;\n";
  for (int I = 0; I != 200; ++I)
    Source += "  }\n";
  Source += "  print(x);\n}\n";
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  EXPECT_TRUE(verifyProgram(*P).empty());
  InterpResult R = interpret(*P);
  ASSERT_TRUE(R.Completed);
  // Only the outermost condition holds (x == 0); the nested ones fail,
  // so x is printed unchanged.
  EXPECT_EQ(R.Output.front(), "0");
}

TEST(Robustness, DeepExpression) {
  std::string Expr = "1";
  for (int I = 0; I != 300; ++I)
    Expr = "(" + Expr + " + 1)";
  compileAnything("def main() { print(" + Expr + "); }");
}

TEST(Robustness, ManyLocalsAndBlocks) {
  std::string Source = "def main() {\n";
  for (int I = 0; I != 500; ++I)
    Source += "  var v" + std::to_string(I) + " = " + std::to_string(I) +
              ";\n";
  Source += "  print(v499);\n}\n";
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr);
  InterpResult R = interpret(*P);
  EXPECT_EQ(R.Output.front(), "499");
}

TEST(Robustness, SlicingFromEveryStatement) {
  // Slicing must be total: every statement of a program is a valid
  // seed, including params, phis, and terminators.
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(R"(
class Pair { var a: int; var b: Object; }
def touch(p: Pair): int {
  if (p.a > 0) {
    return p.a;
  }
  return 0 - p.a;
}
def main() {
  var p = new Pair();
  p.a = readInt();
  p.b = "tag";
  var total = 0;
  while (total < 10) {
    total = total + touch(p);
  }
  print(total);
}
)",
                                            Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  auto PTA = runPointsTo(*P);
  auto G = buildSDG(*P, *PTA, nullptr);
  unsigned Seeds = 0;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        SliceResult Thin = sliceBackward(*G, I.get(), SliceMode::Thin);
        SliceResult Trad =
            sliceBackward(*G, I.get(), SliceMode::Traditional);
        EXPECT_LE(Thin.sizeStmts(), Trad.sizeStmts());
        ++Seeds;
      }
  EXPECT_GE(Seeds, 30u);
}

TEST(Robustness, EmptyAndCommentOnlySources) {
  compileAnything("");
  compileAnything("// nothing here\n// at all\n");
  compileAnything("\n\n\n");
}

TEST(Robustness, HugeStringLiteral) {
  std::string Big(10000, 'x');
  compileAnything("def main() { print(\"" + Big + "\"); }");
}

TEST(Robustness, UnicodeBytesInStrings) {
  // Non-ASCII bytes inside string literals pass through untouched.
  DiagnosticEngine Diag;
  auto P = compileThinJ("def main() { print(\"\xc3\xa9\xe2\x82\xac\"); }",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  InterpResult R = interpret(*P);
  EXPECT_EQ(R.Output.front(), "\xc3\xa9\xe2\x82\xac");
}
