//===-- robustness_test.cpp - Frontend robustness / fuzz-ish tests --------------==//
//
// The frontend must never crash: arbitrary bytes, truncated programs,
// deeply nested expressions, and pathological-but-valid inputs all
// either compile or produce diagnostics.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

/// Compiles and, on success, verifies; never crashes.
void compileAnything(const std::string &Source) {
  DiagnosticEngine Diag;
  CompileOptions Opts;
  Opts.RequireMain = false;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  if (P)
    EXPECT_TRUE(verifyProgram(*P).empty());
  else
    EXPECT_TRUE(Diag.hasErrors());
}

} // namespace

TEST(Robustness, ArbitraryBytes) {
  uint64_t S = 0x12345;
  auto Next = [&S]() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (int Round = 0; Round != 200; ++Round) {
    std::string Junk;
    unsigned Len = Next() % 200;
    for (unsigned I = 0; I != Len; ++I)
      Junk += static_cast<char>(32 + Next() % 95); // Printable ASCII.
    compileAnything(Junk);
  }
}

TEST(Robustness, TruncatedRealProgram) {
  const std::string Full = R"(
class Box {
  var v: Object;
  def set(x: Object) { v = x; }
}
def main() {
  var b = new Box();
  b.set("payload");
  if (b.v != null) {
    print("ok");
  }
}
)";
  for (size_t Len = 0; Len <= Full.size(); Len += 7)
    compileAnything(Full.substr(0, Len));
}

TEST(Robustness, TokenSoup) {
  // Valid tokens in invalid orders.
  const char *Soups[] = {
      "def def def",
      "class A extends A extends A { }",
      "def f() { return return; }",
      "def f() { if while for }",
      "def f() { var x = ((((((1)))))); }",
      "def f() { x = = 3; }",
      "class { var : ; def ( ) }",
      "def f() { a.b.c.d.e.f.g.h(); }",
      "def f() { \"unterminated }",
      "def f(x: int[][][][][]) { }",
      "super(1); def main() { }",
      "def f() { (Foo) (Bar) (Baz) x; }",
  };
  for (const char *Soup : Soups)
    compileAnything(Soup);
}

TEST(Robustness, DeepNesting) {
  // Deeply nested blocks/ifs stress scoping and CFG construction.
  std::string Source = "def main() {\n  var x = 0;\n";
  for (int I = 0; I != 200; ++I)
    Source += "  if (x == " + std::to_string(I) + ") {\n";
  Source += "    x = x + 1;\n";
  for (int I = 0; I != 200; ++I)
    Source += "  }\n";
  Source += "  print(x);\n}\n";
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  EXPECT_TRUE(verifyProgram(*P).empty());
  InterpResult R = interpret(*P);
  ASSERT_TRUE(R.Completed);
  // Only the outermost condition holds (x == 0); the nested ones fail,
  // so x is printed unchanged.
  EXPECT_EQ(R.Output.front(), "0");
}

TEST(Robustness, DeepExpression) {
  std::string Expr = "1";
  for (int I = 0; I != 300; ++I)
    Expr = "(" + Expr + " + 1)";
  compileAnything("def main() { print(" + Expr + "); }");
}

TEST(Robustness, ManyLocalsAndBlocks) {
  std::string Source = "def main() {\n";
  for (int I = 0; I != 500; ++I)
    Source += "  var v" + std::to_string(I) + " = " + std::to_string(I) +
              ";\n";
  Source += "  print(v499);\n}\n";
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr);
  InterpResult R = interpret(*P);
  EXPECT_EQ(R.Output.front(), "499");
}

TEST(Robustness, SlicingFromEveryStatement) {
  // Slicing must be total: every statement of a program is a valid
  // seed, including params, phis, and terminators.
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(R"(
class Pair { var a: int; var b: Object; }
def touch(p: Pair): int {
  if (p.a > 0) {
    return p.a;
  }
  return 0 - p.a;
}
def main() {
  var p = new Pair();
  p.a = readInt();
  p.b = "tag";
  var total = 0;
  while (total < 10) {
    total = total + touch(p);
  }
  print(total);
}
)",
                                            Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  auto PTA = runPointsTo(*P);
  auto G = buildSDG(*P, *PTA, nullptr);
  unsigned Seeds = 0;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        SliceResult Thin = sliceBackward(*G, I.get(), SliceMode::Thin);
        SliceResult Trad =
            sliceBackward(*G, I.get(), SliceMode::Traditional);
        EXPECT_LE(Thin.sizeStmts(), Trad.sizeStmts());
        ++Seeds;
      }
  EXPECT_GE(Seeds, 30u);
}

TEST(Robustness, EmptyAndCommentOnlySources) {
  compileAnything("");
  compileAnything("// nothing here\n// at all\n");
  compileAnything("\n\n\n");
}

TEST(Robustness, HugeStringLiteral) {
  std::string Big(10000, 'x');
  compileAnything("def main() { print(\"" + Big + "\"); }");
}

TEST(Robustness, UnicodeBytesInStrings) {
  // Non-ASCII bytes inside string literals pass through untouched.
  DiagnosticEngine Diag;
  auto P = compileThinJ("def main() { print(\"\xc3\xa9\xe2\x82\xac\"); }",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  InterpResult R = interpret(*P);
  EXPECT_EQ(R.Output.front(), "\xc3\xa9\xe2\x82\xac");
}

//===----------------------------------------------------------------------===//
// Pipeline exhaustion: budgets and fault injection (resource
// governance). Degradation must be sound, never a crash.
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "slicer/Chop.h"
#include "slicer/Expansion.h"
#include "slicer/Tabulation.h"
#include "support/Budget.h"

#include <filesystem>
#include <fstream>
#include <set>

namespace {

std::unique_ptr<Program> compileWorkload(const WorkloadProgram &W) {
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(W.Source, Diag);
  EXPECT_TRUE(P) << W.Name;
  return P;
}

/// Every instruction that has a node in \p G (slice seeds).
std::vector<const Instr *> allSeedInstrs(const Program &P, const SDG &G) {
  std::vector<const Instr *> Out;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (G.nodeFor(I.get()) >= 0)
          Out.push_back(I.get());
  return Out;
}

/// Statement instruction set of a slice — the representation that is
/// comparable across different SDGs of the same program (node and
/// object ids are not).
std::set<const Instr *> stmtSet(const SliceResult &S) {
  auto V = S.statements();
  return std::set<const Instr *>(V.begin(), V.end());
}

/// Canonical cross-session slice rendering: statement source
/// positions (instruction pointers are not comparable between two
/// different compiles of the same source).
std::set<std::pair<unsigned, unsigned>> stmtPositions(const SliceResult &S) {
  std::set<std::pair<unsigned, unsigned>> Out;
  for (const Instr *I : S.statements())
    Out.insert({I->loc().Line, I->loc().Col});
  return Out;
}

/// Warm/edited source pair for the mid-incremental fault cases. The
/// edit rewrites put()'s body through a fresh alias so the points-to
/// retraction, mod-ref re-scan, and SDG patch all have real work —
/// an armed update fault is guaranteed a poll to fire at.
const char *kIncFaultWarmSrc = R"(
class Cell {
  var v: int;
}
def put(c: Cell, x: int) {
  c.v = x;
}
def main() {
  var a = new Cell();
  put(a, readInt());
  print(a.v);
}
)";
const char *kIncFaultEditedSrc = R"(
class Cell {
  var v: int;
}
def put(c: Cell, x: int) {
  var d = c; d.v = x + 1 - 1;
}
def main() {
  var a = new Cell();
  put(a, readInt());
  print(a.v);
}
)";
constexpr unsigned kIncFaultSeedLine = 11; // print(a.v)

} // namespace

// (b) of the exhaustion checklist: a budget-limited slice on a given
// SDG is a subset of the unbudgeted traditional slice on that SDG,
// for every statement of every debugging workload.
TEST(PipelineExhaustion, DegradedSliceIsSubsetOfTraditional) {
  FaultInjector::instance().reset();
  AnalysisBudget Tight;
  Tight.MaxSlicePops = 5;
  for (const BugCase &Case : debuggingCases()) {
    std::unique_ptr<Program> P = compileWorkload(Case.Prog);
    ASSERT_TRUE(P);
    std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
    std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
    for (const Instr *Seed : allSeedInstrs(*P, *G)) {
      SliceResult Budgeted =
          sliceBackward(*G, Seed, SliceMode::Thin, &Tight);
      SliceResult FullTrad =
          sliceBackward(*G, Seed, SliceMode::Traditional);
      EXPECT_TRUE(FullTrad.complete());
      // Node-level subset on the shared graph.
      BitSet Extra = Budgeted.nodeSet();
      Extra.subtract(FullTrad.nodeSet());
      EXPECT_EQ(Extra.count(), 0u)
          << Case.Id << ": budgeted slice escaped the traditional slice";
      if (!Budgeted.complete())
        EXPECT_FALSE(Budgeted.degradedReason().empty());
    }
  }
}

// (a) of the checklist: a tight budget over the whole pipeline — PTA,
// mod-ref, SDG, slicing — never crashes, and slices stay subsets of
// the unbudgeted traditional slice computed on the same (possibly
// degraded) graph.
TEST(PipelineExhaustion, TightFullPipelineBudgetNeverCrashes) {
  FaultInjector::instance().reset();
  AnalysisBudget Tight;
  Tight.MaxPtaPropagations = 20;
  Tight.MaxModRefSteps = 5;
  Tight.MaxSdgNodes = 40;
  Tight.MaxSdgEdges = 6;
  Tight.MaxSlicePops = 8;
  Tight.MaxExpansionRounds = 1;
  for (const BugCase &Case : debuggingCases()) {
    std::unique_ptr<Program> P = compileWorkload(Case.Prog);
    ASSERT_TRUE(P);
    PTAOptions PO;
    PO.Budget = &Tight;
    std::unique_ptr<PointsToResult> PTA = runPointsTo(*P, PO);
    SDGOptions SO;
    SO.Budget = &Tight;
    std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr, SO);
    for (const Instr *Seed : allSeedInstrs(*P, *G)) {
      SliceResult S = sliceBackward(*G, Seed, SliceMode::Thin, &Tight);
      SliceResult Trad = sliceBackward(*G, Seed, SliceMode::Traditional);
      BitSet Extra = S.nodeSet();
      Extra.subtract(Trad.nodeSet());
      EXPECT_EQ(Extra.count(), 0u) << Case.Id;
    }
  }
}

// PTA degradation is an over-approximation: whatever the precise
// object-sensitive analysis says may alias, the coarse CHA + all-heap
// fallback must also say may alias, and the thin slice computed over
// the coarse pipeline must cover the precise thin slice
// statement-for-statement.
TEST(PipelineExhaustion, CoarsePtaFallbackOverApproximates) {
  FaultInjector &FI = FaultInjector::instance();
  WorkloadProgram W = makeFigure1();
  std::unique_ptr<Program> P = compileWorkload(W);
  ASSERT_TRUE(P);

  FI.reset();
  std::unique_ptr<PointsToResult> Precise = runPointsTo(*P);
  ASSERT_FALSE(Precise->report().degraded());
  std::unique_ptr<SDG> PreciseG = buildSDG(*P, *Precise, nullptr);

  FI.reset();
  FI.arm("pta.solve");
  std::unique_ptr<PointsToResult> Coarse = runPointsTo(*P);
  EXPECT_TRUE(FI.fired().count("pta.solve"));
  FI.reset();
  ASSERT_TRUE(Coarse->report().degraded());
  EXPECT_EQ(Coarse->report().Reason, "fault:pta.solve");
  EXPECT_FALSE(Coarse->report().Fallback.empty());

  // mayAlias implication over every pair of reference locals.
  std::vector<const Local *> Refs;
  for (const auto &M : P->methods())
    for (const auto &L : M->locals())
      if (L->type()->isReference())
        Refs.push_back(L.get());
  for (const Local *A : Refs)
    for (const Local *B : Refs)
      if (Precise->mayAlias(A, B))
        EXPECT_TRUE(Coarse->mayAlias(A, B));

  // The CHA call graph covers at least the precisely reachable
  // methods.
  for (const Method *M : Precise->callGraph().reachableMethods())
    EXPECT_TRUE(Coarse->callGraph().isReachable(M));

  // Statement-level slice coverage on the coarse-PTA graph.
  std::unique_ptr<SDG> CoarseG = buildSDG(*P, *Coarse, nullptr);
  for (const Instr *Seed : allSeedInstrs(*P, *PreciseG)) {
    if (CoarseG->nodeFor(Seed) < 0)
      continue;
    std::set<const Instr *> PreciseStmts =
        stmtSet(sliceBackward(*PreciseG, Seed, SliceMode::Thin));
    std::set<const Instr *> CoarseStmts =
        stmtSet(sliceBackward(*CoarseG, Seed, SliceMode::Thin));
    for (const Instr *I : PreciseStmts)
      EXPECT_TRUE(CoarseStmts.count(I))
          << "coarse thin slice lost a precise statement";
  }
}

// SDG degradation (merged clones + coarse heap hubs) must also cover
// the precise thin slice at statement level.
TEST(PipelineExhaustion, CoarseSdgFallbackOverApproximates) {
  FaultInjector::instance().reset();
  WorkloadProgram W = makeFigure1();
  std::unique_ptr<Program> P = compileWorkload(W);
  ASSERT_TRUE(P);
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> PreciseG = buildSDG(*P, *PTA, nullptr);
  ASSERT_FALSE(PreciseG->report().degraded());

  AnalysisBudget B;
  B.MaxSdgNodes = 1;
  B.MaxSdgEdges = 1;
  SDGOptions SO;
  SO.Budget = &B;
  std::unique_ptr<SDG> CoarseG = buildSDG(*P, *PTA, nullptr, SO);
  ASSERT_TRUE(CoarseG->report().degraded());
  EXPECT_NE(CoarseG->report().Fallback.find("context-merged clones"),
            std::string::npos);
  EXPECT_NE(CoarseG->report().Fallback.find("coarse heap hubs"),
            std::string::npos);

  for (const Instr *Seed : allSeedInstrs(*P, *PreciseG)) {
    ASSERT_GE(CoarseG->nodeFor(Seed), 0);
    std::set<const Instr *> PreciseStmts =
        stmtSet(sliceBackward(*PreciseG, Seed, SliceMode::Thin));
    std::set<const Instr *> CoarseStmts =
        stmtSet(sliceBackward(*CoarseG, Seed, SliceMode::Thin));
    for (const Instr *I : PreciseStmts)
      EXPECT_TRUE(CoarseStmts.count(I))
          << "degraded SDG lost a precise thin-slice statement";
  }
}

// ModRef degradation: all-partitions mod/ref is a superset of the
// precise closure for every reachable method.
TEST(PipelineExhaustion, ModRefFallbackOverApproximates) {
  FaultInjector &FI = FaultInjector::instance();
  WorkloadProgram W = makeFigure1();
  std::unique_ptr<Program> P = compileWorkload(W);
  ASSERT_TRUE(P);
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);

  FI.reset();
  ModRefResult Precise(*P, *PTA);
  ASSERT_FALSE(Precise.report().degraded());

  FI.reset();
  FI.arm("modref.closure");
  ModRefResult Degraded(*P, *PTA);
  EXPECT_TRUE(FI.fired().count("modref.closure"));
  FI.reset();
  ASSERT_TRUE(Degraded.report().degraded());

  for (const Method *M : PTA->callGraph().reachableMethods()) {
    BitSet Mod = Precise.modOf(M);
    Mod.subtract(Degraded.modOf(M));
    EXPECT_EQ(Mod.count(), 0u);
    BitSet Ref = Precise.refOf(M);
    Ref.subtract(Degraded.refOf(M));
    EXPECT_EQ(Ref.count(), 0u);
  }
}

// (c) of the checklist: every registered fault point fires at least
// once, and each stage's degradation path returns a sound result.
TEST(PipelineExhaustion, EveryFaultPointFiresWithSoundDegradation) {
  FaultInjector &FI = FaultInjector::instance();
  WorkloadProgram W = makeFigure1();
  std::unique_ptr<Program> P = compileWorkload(W);
  ASSERT_TRUE(P);
  const Instr *Seed = instrAtLine(*P, W.markerLine("seed"));
  ASSERT_TRUE(Seed);

  // Unfaulted references.
  FI.reset();
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
  std::set<const Instr *> FullThin =
      stmtSet(sliceBackward(*G, Seed, SliceMode::Thin));
  ModRefResult MR(*P, *PTA);
  SDGOptions CsOpts;
  CsOpts.ContextSensitive = true;
  std::unique_ptr<SDG> CsG = buildSDG(*P, *PTA, &MR, CsOpts);
  SliceResult FullTab = TabulationSlicer(*CsG, SliceMode::Thin).slice(Seed);
  SliceResult FullExpand =
      ThinExpansion(*G, *PTA).expandToTraditional(Seed);

  // Cold post-edit reference for the mid-incremental fault cases:
  // whichever stage update a fault knocks out, the incremental
  // session's answer must match this fault-free cold rebuild.
  std::set<std::pair<unsigned, unsigned>> IncRef;
  {
    FI.reset();
    AnalysisSession Ref{std::string(kIncFaultEditedSrc)};
    ASSERT_TRUE(Ref.program());
    const Instr *RS = instrAtLine(*Ref.program(), kIncFaultSeedLine);
    ASSERT_TRUE(RS);
    const SliceResult *R = Ref.sliceBackwardCached(RS, SliceMode::Thin);
    ASSERT_TRUE(R);
    IncRef = stmtPositions(*R);
  }

  std::set<std::string> Covered;
  for (const std::string &Point : FaultInjector::knownPoints()) {
    FI.reset();
    FI.arm(Point);

    if (Point == "pta.solve") {
      std::unique_ptr<PointsToResult> R = runPointsTo(*P);
      EXPECT_TRUE(R->report().degraded());
    } else if (Point == "modref.closure") {
      ModRefResult R(*P, *PTA);
      EXPECT_TRUE(R.report().degraded());
    } else if (Point == "sdg.clones" || Point == "sdg.heap") {
      std::unique_ptr<SDG> DG = buildSDG(*P, *PTA, nullptr);
      EXPECT_TRUE(DG->report().degraded()) << Point;
      // Over-approximation: the degraded graph's thin slice covers
      // the precise one.
      if (DG->nodeFor(Seed) >= 0) {
        std::set<const Instr *> S =
            stmtSet(sliceBackward(*DG, Seed, SliceMode::Thin));
        for (const Instr *I : FullThin)
          EXPECT_TRUE(S.count(I)) << Point;
      }
    } else if (Point == "slice.pop") {
      SliceResult S = sliceBackward(*G, Seed, SliceMode::Thin);
      EXPECT_FALSE(S.complete());
      // Under-approximation on the same graph.
      BitSet Extra = S.nodeSet();
      Extra.subtract(
          sliceBackward(*G, Seed, SliceMode::Traditional).nodeSet());
      EXPECT_EQ(Extra.count(), 0u);
    } else if (Point == "tabulation.summary") {
      SliceResult S = TabulationSlicer(*CsG, SliceMode::Thin).slice(Seed);
      EXPECT_FALSE(S.complete());
      BitSet Extra = S.nodeSet();
      Extra.subtract(FullTab.nodeSet());
      EXPECT_EQ(Extra.count(), 0u);
    } else if (Point == "expand.round") {
      SliceResult S = ThinExpansion(*G, *PTA).expandToTraditional(Seed);
      EXPECT_FALSE(S.complete());
      BitSet Extra = S.nodeSet();
      Extra.subtract(FullExpand.nodeSet());
      EXPECT_EQ(Extra.count(), 0u);
    } else if (Point == "pta.update" || Point == "modref.update" ||
               Point == "sdg.patch") {
      // Mid-incremental faults: the point fires inside the session's
      // function-granular setSource() update, the stage declines and
      // is rebuilt cold on the next request, and the post-edit slice
      // is identical to the fault-free cold reference.
      AnalysisSession S{std::string(kIncFaultWarmSrc)};
      S.setIncremental(true);
      ASSERT_TRUE(S.program());
      if (Point == "modref.update")
        ASSERT_TRUE(S.modRef()); // put the artifact on the update path
      const Instr *WarmSeed = instrAtLine(*S.program(), kIncFaultSeedLine);
      ASSERT_TRUE(WarmSeed);
      ASSERT_TRUE(S.sliceBackwardCached(WarmSeed, SliceMode::Thin));
      S.setSource(kIncFaultEditedSrc); // the armed fault fires in here
      EXPECT_EQ(S.incrementalStats().Applied, 1u) << Point;
      EXPECT_GE(S.incrementalStats().StageFallbacks, 1u) << Point;
      ASSERT_TRUE(S.program());
      const Instr *EditSeed = instrAtLine(*S.program(), kIncFaultSeedLine);
      ASSERT_TRUE(EditSeed);
      const SliceResult *R = S.sliceBackwardCached(EditSeed, SliceMode::Thin);
      ASSERT_TRUE(R) << Point << ": " << S.lastError().str();
      EXPECT_EQ(stmtPositions(*R), IncRef) << Point;
    } else if (Point == "snapshot.load") {
      // A fault during warm start declines the load soundly: the
      // session stays untouched, rebuilds cold on the next request,
      // and answers exactly like a never-warm-started session.
      namespace fs = std::filesystem;
      const std::string Snap =
          (fs::temp_directory_path() / "tsl_faultpoint.tslsnap").string();
      {
        AnalysisSession Saver{std::string(kIncFaultWarmSrc)};
        ASSERT_TRUE(Saver.saveSnapshot(Snap).isOk());
      }
      AnalysisSession S{std::string(kIncFaultWarmSrc)};
      Status L = S.loadSnapshot(Snap); // the armed fault fires in here
      EXPECT_FALSE(L.isOk());
      EXPECT_EQ(S.snapshotStats().Loads, 0u);
      EXPECT_EQ(S.snapshotStats().Fallbacks, 1u);
      EXPECT_NE(S.snapshotStats().LastFallbackReason.find("fault"),
                std::string::npos);
      ASSERT_TRUE(S.program());
      const Instr *SSeed = instrAtLine(*S.program(), kIncFaultSeedLine);
      ASSERT_TRUE(SSeed);
      const SliceResult *R = S.sliceBackwardCached(SSeed, SliceMode::Thin);
      ASSERT_TRUE(R) << S.lastError().str();
      AnalysisSession Cold{std::string(kIncFaultWarmSrc)};
      ASSERT_TRUE(Cold.program());
      const Instr *CSeed = instrAtLine(*Cold.program(), kIncFaultSeedLine);
      const SliceResult *CR = Cold.sliceBackwardCached(CSeed, SliceMode::Thin);
      ASSERT_TRUE(CR);
      EXPECT_EQ(stmtPositions(*R), stmtPositions(*CR));
      fs::remove(Snap);
    } else if (Point == "interp.step" || Point == "interp.output") {
      InterpOptions IO;
      IO.InputLines = {"John Doe"};
      IO.InputInts = {1};
      InterpResult R = interpret(*P, IO);
      EXPECT_TRUE(R.HitLimit) << Point;
      EXPECT_FALSE(R.Error.empty());
    } else {
      ADD_FAILURE() << "fault point without a coverage case: " << Point;
    }

    EXPECT_TRUE(FI.fired().count(Point))
        << "fault point never fired: " << Point;
    if (FI.fired().count(Point))
      Covered.insert(Point);
  }
  FI.reset();
  EXPECT_EQ(Covered.size(), FaultInjector::knownPoints().size());
}

// Satellite: the interpreter's default limits and the budget gate
// terminate runaway programs with a diagnostic.
TEST(PipelineExhaustion, InterpreterLimitsStopRunawayPrograms) {
  FaultInjector::instance().reset();
  const std::string Loop = R"(
def main() {
  var i = 0;
  while (i < 10) {
    print("spin");
    i = i - i;
  }
}
)";
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Loop, Diag);
  ASSERT_TRUE(P);

  InterpOptions StepLimited;
  StepLimited.MaxSteps = 1'000;
  InterpResult R1 = interpret(*P, StepLimited);
  EXPECT_FALSE(R1.Completed);
  EXPECT_TRUE(R1.HitLimit);
  EXPECT_NE(R1.Error.find("step limit exceeded"), std::string::npos);

  InterpOptions OutLimited;
  OutLimited.MaxOutputBytes = 64;
  InterpResult R2 = interpret(*P, OutLimited);
  EXPECT_TRUE(R2.HitLimit);
  EXPECT_NE(R2.Error.find("output limit exceeded"), std::string::npos);
  EXPECT_LE(R2.Output.size(), 13u);

  AnalysisBudget B;
  B.MaxInterpSteps = 500;
  InterpOptions Budgeted;
  Budgeted.Budget = &B;
  InterpResult R3 = interpret(*P, Budgeted);
  EXPECT_TRUE(R3.HitLimit);
  EXPECT_NE(R3.Error.find("interpreter budget exhausted"),
            std::string::npos);
  EXPECT_LE(R3.Steps, 501u);
}

// Chops inherit degradation from either constituent slice and stay
// subsets of the unbudgeted chop.
TEST(PipelineExhaustion, BudgetedChopIsSubset) {
  FaultInjector::instance().reset();
  WorkloadProgram W = makeFigure1();
  std::unique_ptr<Program> P = compileWorkload(W);
  ASSERT_TRUE(P);
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);
  const Instr *Src = instrAtLine(*P, W.markerLine("add"));
  const Instr *Snk = instrAtLine(*P, W.markerLine("seed"));
  ASSERT_TRUE(Src && Snk);

  SliceResult Full = chop(*G, Src, Snk, SliceMode::Thin);
  AnalysisBudget Tight;
  Tight.MaxSlicePops = 3;
  SliceResult Budgeted = chop(*G, Src, Snk, SliceMode::Thin, &Tight);
  BitSet Extra = Budgeted.nodeSet();
  Extra.subtract(Full.nodeSet());
  EXPECT_EQ(Extra.count(), 0u);
  if (!Budgeted.complete())
    EXPECT_FALSE(Budgeted.degradedReason().empty());
}

//===----------------------------------------------------------------------===//
// Snapshot robustness: malformed snapshot files decline soundly
//===----------------------------------------------------------------------===//

namespace {

/// Loads \p Bytes as a snapshot into a fresh session and asserts the
/// sound-decline contract: load fails, the fallback is recorded, and
/// the session still answers every query exactly like \p Ref (the
/// cold answer) — never a crash, never a stale artifact.
void expectSoundDecline(const std::vector<char> &Bytes, const char *Tag,
                        const std::set<std::pair<unsigned, unsigned>> &Ref) {
  namespace fs = std::filesystem;
  const std::string Path =
      (fs::temp_directory_path() / "tsl_corrupt_case.tslsnap").string();
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  AnalysisSession S{std::string(kIncFaultWarmSrc)};
  Status L = S.loadSnapshot(Path);
  EXPECT_FALSE(L.isOk()) << Tag;
  EXPECT_EQ(S.snapshotStats().Loads, 0u) << Tag;
  EXPECT_EQ(S.snapshotStats().Fallbacks, 1u) << Tag;
  EXPECT_FALSE(S.snapshotStats().LastFallbackReason.empty()) << Tag;
  EXPECT_NE(S.statsString().find("last_fallback:"), std::string::npos) << Tag;
  ASSERT_TRUE(S.program()) << Tag;
  const Instr *Seed = instrAtLine(*S.program(), kIncFaultSeedLine);
  ASSERT_TRUE(Seed) << Tag;
  const SliceResult *R = S.sliceBackwardCached(Seed, SliceMode::Thin);
  ASSERT_TRUE(R) << Tag << ": " << S.lastError().str();
  EXPECT_EQ(stmtPositions(*R), Ref) << Tag;
  fs::remove(Path);
}

} // namespace

TEST(SnapshotRobustness, CorruptSnapshotsDeclineSoundly) {
  FaultInjector::instance().reset();
  namespace fs = std::filesystem;
  const std::string Snap =
      (fs::temp_directory_path() / "tsl_corrupt.tslsnap").string();

  AnalysisSession Saver{std::string(kIncFaultWarmSrc)};
  ASSERT_TRUE(Saver.saveSnapshot(Snap).isOk());
  std::vector<char> Bytes;
  {
    std::ifstream In(Snap, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(Bytes.size(), 16u);

  // Cold slice reference the declined sessions must still reproduce.
  std::set<std::pair<unsigned, unsigned>> Ref;
  {
    AnalysisSession Cold{std::string(kIncFaultWarmSrc)};
    ASSERT_TRUE(Cold.program());
    const Instr *Seed = instrAtLine(*Cold.program(), kIncFaultSeedLine);
    ASSERT_TRUE(Seed);
    const SliceResult *R = Cold.sliceBackwardCached(Seed, SliceMode::Thin);
    ASSERT_TRUE(R);
    Ref = stmtPositions(*R);
  }

  // Truncations, from empty up to one-byte-short.
  for (std::size_t Len : std::vector<std::size_t>{
           0, 3, 8, Bytes.size() / 4, Bytes.size() / 2, Bytes.size() - 1})
    expectSoundDecline(
        std::vector<char>(Bytes.begin(), Bytes.begin() + Len), "truncated",
        Ref);

  // Single bit flips spread across the whole file: header, section
  // frames, and every payload region. Each must trip the magic check,
  // a bounds check, or a section CRC.
  const std::size_t Step = Bytes.size() / 16 + 1;
  for (std::size_t Pos = 0; Pos < Bytes.size(); Pos += Step) {
    std::vector<char> M = Bytes;
    M[Pos] = static_cast<char>(M[Pos] ^ 0x20);
    expectSoundDecline(M, "bit flip", Ref);
  }

  // Version bump: bytes 4..7 hold the little-endian format version.
  {
    std::vector<char> M = Bytes;
    M[4] = static_cast<char>(M[4] + 1);
    expectSoundDecline(M, "version bump", Ref);
  }

  // Wrong source digest: a session holding different source must
  // refuse the otherwise-valid snapshot.
  {
    AnalysisSession Other{std::string(kIncFaultEditedSrc)};
    Status L = Other.loadSnapshot(Snap);
    EXPECT_FALSE(L.isOk());
    EXPECT_NE(Other.snapshotStats().LastFallbackReason.find("digest"),
              std::string::npos);
    ASSERT_TRUE(Other.program());
  }

  // Wrong option digest: same source, different PTA options.
  {
    AnalysisSession S{std::string(kIncFaultWarmSrc)};
    PTAOptions PO;
    PO.ObjSensContainers = false;
    S.setPTAOptions(PO);
    Status L = S.loadSnapshot(Snap);
    EXPECT_FALSE(L.isOk());
    EXPECT_NE(S.snapshotStats().LastFallbackReason.find("option digest"),
              std::string::npos);
  }

  // The pristine file still loads after all that.
  {
    AnalysisSession S{std::string(kIncFaultWarmSrc)};
    EXPECT_TRUE(S.loadSnapshot(Snap).isOk());
    EXPECT_EQ(S.snapshotStats().Loads, 1u);
    const Instr *Seed = instrAtLine(*S.program(), kIncFaultSeedLine);
    ASSERT_TRUE(Seed);
    const SliceResult *R = S.sliceBackwardCached(Seed, SliceMode::Thin);
    ASSERT_TRUE(R);
    EXPECT_EQ(stmtPositions(*R), Ref);
  }
  fs::remove(Snap);
}
