//===-- chaos_test.cpp - Seeded fault-schedule chaos suite ----------------------==//
//
// Replays >1000 seeded probabilistic fault schedules (see
// FaultInjector::armRandomSchedule) through whole analysis sessions,
// the interpreter, and thin expansion, asserting the fail-safe
// contract end to end:
//
//   - no crash: no injected Throw/Stall/Degrade fault, at any poll of
//     any stage, under any thread count, escapes a boundary;
//   - complete-or-soundly-degraded: every produced result is either
//     complete or carries a degradation reason, and a stage that
//     crashed past its retries yields a structured Status (nothing is
//     cached) rather than a partial artifact;
//   - healing: after the fault schedule is disarmed, a query on the
//     SAME session is byte-identical to a fault-free session's answer
//     (tainted artifacts were evicted, failures were never cached).
//
// The suite carries the "chaos" ctest label: the TSL_SANITIZE=address
// and TSL_SANITIZE=thread trees run it (`ctest -L chaos`) so every
// schedule is also leak- and race-checked.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

using namespace tsl;

namespace {

/// Exercises every pipeline stage: a call, heap flow through a field
/// and an array, a loop, and a downcast.
const char *Source = R"(
class Cell { var v: int; }
def store(c: Cell, x: int) {
  c.v = x;
}
def main() {
  var c = new Cell();
  var box: Object[] = new Object[2];
  var i = 0;
  while (i < 3) {
    store(c, i);
    i = i + 1;
  }
  box[0] = c;
  var got = (Cell) box[0];
  print("v");
  print("w");
}
)";

/// Resets the injector (and restores the stall cap) on entry and
/// exit, so no test leaks an armed schedule into the next.
struct InjectorGuard {
  InjectorGuard() { clean(); }
  ~InjectorGuard() { clean(); }
  static void clean() {
    FaultInjector::instance().reset();
    FaultInjector::instance().setStallCapMs(100);
  }
};

/// The last instruction carrying the highest source line — a
/// deterministic seed for identical compiles of the same source.
const Instr *lastSeed(const Program &P) {
  const Instr *Best = nullptr;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line && (!Best || I->loc().Line >= Best->loc().Line))
          Best = I.get();
  return Best;
}

/// Canonical rendering for byte-identical comparison across sessions.
std::string renderSlice(const SliceResult &R, const Program &P) {
  std::string Out = std::to_string(R.sizeStmts()) + "|";
  for (const SourceLine &L : R.sourceLines()) {
    Out += L.M->qualifiedName(P.strings());
    Out += ':';
    Out += std::to_string(L.Line);
    Out += ';';
  }
  return Out;
}

/// Fault-free baseline for one SDG mode, computed on a fresh session.
std::string baselineSlice(bool ContextSensitive) {
  InjectorGuard::clean();
  AnalysisSession S(Source);
  if (ContextSensitive) {
    SDGOptions SO;
    SO.ContextSensitive = true;
    S.setSDGOptions(SO);
  }
  Program *P = S.program();
  EXPECT_NE(P, nullptr);
  const SliceResult *R = S.sliceBackwardCached(lastSeed(*P), SliceMode::Thin);
  EXPECT_NE(R, nullptr);
  EXPECT_TRUE(R->complete());
  return renderSlice(*R, *P);
}

} // namespace

// 500 schedules x threads {1,4}; odd schedules run the
// context-sensitive representation so the mod-ref and tabulation
// fault points are in play too.
TEST(Chaos, SeededSessionSchedulesCompleteOrDegradeAndHeal) {
  InjectorGuard Guard;
  const std::string BaselineCI = baselineSlice(false);
  const std::string BaselineCS = baselineSlice(true);

  FaultInjector &FI = FaultInjector::instance();
  uint64_t Complete = 0, Degraded = 0, Failed = 0;
  for (unsigned Threads : {1u, 4u}) {
    for (uint64_t Schedule = 0; Schedule != 500; ++Schedule) {
      const bool CS = (Schedule & 1) != 0;
      FI.reset();
      FI.setStallCapMs(2); // Un-rescued stalls must stay fast.
      FI.armRandomSchedule(Schedule * 2 + (Threads == 4 ? 1 : 0));

      AnalysisBudget B;
      B.BudgetMs = 60'000; // Watchdog armed, but only stalls reach it.
      B.start();
      AnalysisSession S(Source);
      S.setThreads(Threads);
      S.setBudget(&B);
      if (CS) {
        SDGOptions SO;
        SO.ContextSensitive = true;
        S.setSDGOptions(SO);
      }

      Program *P = S.program();
      ASSERT_NE(P, nullptr); // Compilation is ungoverned.
      const SliceResult *R = S.sliceBackwardCached(lastSeed(*P),
                                                   SliceMode::Thin);
      if (!R) {
        // A stage crashed past its retries: the failure must be
        // structured, and nothing may have been cached (verified by
        // the healing check below succeeding from scratch).
        EXPECT_FALSE(S.lastError().isOk())
            << "schedule " << Schedule << " threads " << Threads;
        ++Failed;
      } else if (!R->complete()) {
        EXPECT_FALSE(R->degradedReason().empty())
            << "schedule " << Schedule << " threads " << Threads;
        ++Degraded;
      } else {
        ++Complete;
      }

      // Disarm and drop governance: the SAME session must now answer
      // byte-identically to a fault-free session.
      FI.reset();
      S.setBudget(nullptr);
      Program *P2 = S.program();
      ASSERT_NE(P2, nullptr);
      const SliceResult *Healed =
          S.sliceBackwardCached(lastSeed(*P2), SliceMode::Thin);
      ASSERT_NE(Healed, nullptr)
          << "schedule " << Schedule << " threads " << Threads << ": "
          << S.lastError().str();
      EXPECT_TRUE(Healed->complete())
          << "schedule " << Schedule << " threads " << Threads;
      EXPECT_EQ(renderSlice(*Healed, *P2), CS ? BaselineCS : BaselineCI)
          << "schedule " << Schedule << " threads " << Threads;
    }
  }
  // The schedule generator must actually produce fault activity, or
  // this suite silently tests nothing.
  EXPECT_GT(Degraded + Failed, 100u);
  EXPECT_GT(Complete, 0u);
}

// Mid-incremental chaos: seeded schedules armed across the
// function-granular setSource() fast path (fault points pta.update,
// modref.update, sdg.patch). Whatever combination of stage updates a
// schedule knocks out, setSource must not throw, and the post-edit
// answer on the SAME session — queried after the schedule clears —
// must be byte-identical to a cold session built from the edited
// source. A third of the schedules additionally pin a low-poll fault
// on one of the three update points so each is guaranteed to fire.
TEST(Chaos, SeededMidIncrementalSchedulesMatchColdRebuild) {
  InjectorGuard Guard;
  // The edit rewrites store()'s body through a fresh alias: real
  // retraction work for every stage update. Same line count, so the
  // seed line is stable across the edit.
  std::string Edited = Source;
  const std::string Old = "  c.v = x;";
  const std::string New = "  var d = c; d.v = x + 1 - 1;";
  const std::size_t At = Edited.find(Old);
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, Old.size(), New);

  // Cold fault-free baselines on the edited source, per SDG mode.
  auto editedBaseline = [&](bool ContextSensitive) {
    InjectorGuard::clean();
    AnalysisSession S(Edited);
    if (ContextSensitive) {
      SDGOptions SO;
      SO.ContextSensitive = true;
      S.setSDGOptions(SO);
    }
    Program *P = S.program();
    EXPECT_NE(P, nullptr);
    const SliceResult *R =
        S.sliceBackwardCached(lastSeed(*P), SliceMode::Thin);
    EXPECT_NE(R, nullptr);
    EXPECT_TRUE(R->complete());
    return renderSlice(*R, *P);
  };
  const std::string BaselineCI = editedBaseline(false);
  const std::string BaselineCS = editedBaseline(true);

  FaultInjector &FI = FaultInjector::instance();
  const char *UpdatePoints[] = {"pta.update", "modref.update", "sdg.patch"};
  uint64_t UpdateFired[3] = {0, 0, 0};
  uint64_t Fallbacks = 0, CleanApplies = 0;
  for (unsigned Threads : {1u, 4u}) {
    for (uint64_t Schedule = 0; Schedule != 150; ++Schedule) {
      const bool CS = (Schedule & 1) != 0;
      // Warm the session fault-free: the chaos targets the update,
      // not the initial build.
      InjectorGuard::clean();
      AnalysisSession S(Source);
      S.setThreads(Threads);
      S.setIncremental(true);
      if (CS) {
        SDGOptions SO;
        SO.ContextSensitive = true;
        S.setSDGOptions(SO);
      }
      Program *P = S.program();
      ASSERT_NE(P, nullptr);
      ASSERT_NE(S.modRef(), nullptr); // put mod-ref on the update path
      ASSERT_NE(S.sliceBackwardCached(lastSeed(*P), SliceMode::Thin),
                nullptr);

      FI.reset();
      FI.setStallCapMs(2);
      FI.armRandomSchedule(0x3000 + Schedule * 2 + (Threads == 4 ? 1 : 0));
      if (Schedule % 3 == 0)
        FI.arm(UpdatePoints[(Schedule / 3) % 3], /*AtPoll=*/1,
               Schedule % 2 ? FaultKind::Throw : FaultKind::Degrade);

      S.setSource(Edited); // must not throw, whatever fires inside
      EXPECT_EQ(S.incrementalStats().Attempts, 1u)
          << "schedule " << Schedule << " threads " << Threads;
      for (int I = 0; I != 3; ++I)
        if (FI.fired().count(UpdatePoints[I]))
          ++UpdateFired[I];
      if (S.incrementalStats().StageFallbacks ||
          S.incrementalStats().ColdFallbacks)
        ++Fallbacks;
      else
        ++CleanApplies;

      // Disarm: the same session must now answer byte-identically to
      // a cold session on the edited source.
      FI.reset();
      Program *P2 = S.program();
      ASSERT_NE(P2, nullptr);
      const SliceResult *R =
          S.sliceBackwardCached(lastSeed(*P2), SliceMode::Thin);
      ASSERT_NE(R, nullptr)
          << "schedule " << Schedule << " threads " << Threads << ": "
          << S.lastError().str();
      EXPECT_TRUE(R->complete())
          << "schedule " << Schedule << " threads " << Threads;
      EXPECT_EQ(renderSlice(*R, *P2), CS ? BaselineCS : BaselineCI)
          << "schedule " << Schedule << " threads " << Threads;
    }
  }
  // Every update point must have been knocked out at least once, and
  // some schedules must have let the fast path run to completion.
  EXPECT_GT(UpdateFired[0], 0u) << "pta.update never fired";
  EXPECT_GT(UpdateFired[1], 0u) << "modref.update never fired";
  EXPECT_GT(UpdateFired[2], 0u) << "sdg.patch never fired";
  EXPECT_GT(Fallbacks, 0u);
  EXPECT_GT(CleanApplies, 0u);
}

// The interpreter's fault points (interp.step / interp.output) are
// not on the session path: chaos them directly. No schedule may
// escape interpret() as an exception — crashes surface as
// InterpResult::Crashed, budget trips as HitLimit.
TEST(Chaos, SeededInterpreterSchedulesNeverEscape) {
  InjectorGuard Guard;
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();

  InterpResult Baseline = interpret(*P);
  ASSERT_TRUE(Baseline.Completed);

  FaultInjector &FI = FaultInjector::instance();
  uint64_t Crashed = 0, Limited = 0;
  for (uint64_t Schedule = 0; Schedule != 200; ++Schedule) {
    FI.reset();
    FI.setStallCapMs(2);
    FI.armRandomSchedule(0x1000 + Schedule);
    AnalysisBudget B;
    B.BudgetMs = 60'000;
    B.start();
    InterpOptions O;
    O.Budget = &B;
    InterpResult R = interpret(*P, O); // Must not throw.
    if (R.Crashed) {
      EXPECT_FALSE(R.Error.empty()) << "schedule " << Schedule;
      ++Crashed;
    } else if (!R.Completed) {
      EXPECT_TRUE(R.HitLimit || !R.Error.empty()) << "schedule " << Schedule;
      ++Limited;
    } else {
      EXPECT_EQ(R.Output, Baseline.Output) << "schedule " << Schedule;
    }
  }
  EXPECT_GT(Crashed + Limited, 10u);

  // After the schedules clear, a plain run is byte-identical again.
  FI.reset();
  InterpResult Clean = interpret(*P);
  ASSERT_TRUE(Clean.Completed);
  EXPECT_EQ(Clean.Output, Baseline.Output);
}

// Thin expansion (fault point expand.round) is the remaining gated
// loop off the session path: every schedule must yield a
// complete-or-degraded expansion, never an escape.
TEST(Chaos, SeededExpansionSchedulesCompleteOrDegrade) {
  InjectorGuard Guard;
  // Fault-free upstream artifacts; only the expansion itself is
  // chaosed below.
  AnalysisSession S(Source);
  Program *P = S.program();
  ASSERT_NE(P, nullptr) << S.diagnostics().str();
  PointsToResult *PTA = S.pointsTo();
  ASSERT_NE(PTA, nullptr);
  SDG *G = S.sdg();
  ASSERT_NE(G, nullptr);
  const Instr *Seed = lastSeed(*P);

  ThinExpansion CleanExp(*G, *PTA);
  SliceResult Baseline = CleanExp.expandToTraditional(Seed);
  ASSERT_TRUE(Baseline.complete());
  const std::string BaselineStr = renderSlice(Baseline, *P);

  FaultInjector &FI = FaultInjector::instance();
  uint64_t Degraded = 0;
  for (uint64_t Schedule = 0; Schedule != 300; ++Schedule) {
    FI.reset();
    FI.setStallCapMs(2);
    FI.armRandomSchedule(0x2000 + Schedule);
    // The random schedules spread AtPoll over 1..40, but this small
    // fixture runs only a handful of expansion rounds, so most armed
    // expand.round faults never reach their poll. Top up a third of
    // the schedules with a low-poll fault (still a pure function of
    // the schedule number) so the loop under test degrades often
    // enough to be measured.
    if (Schedule % 3 == 0)
      FI.arm("expand.round", /*AtPoll=*/1 + (Schedule / 3) % 3,
             Schedule % 2 ? FaultKind::Throw : FaultKind::Degrade);
    AnalysisBudget B;
    B.BudgetMs = 60'000;
    B.start();
    SliceResult R(G, BitSet(G->numNodes()));
    try {
      ThinExpansion Exp(*G, *PTA, &B);
      R = Exp.expandToTraditional(Seed);
    } catch (const FaultInjectedError &) {
      // An expansion-level Throw fault is allowed to surface here —
      // expansion is driven directly, not through a session boundary —
      // but it must be exactly FaultInjectedError, nothing else.
      ++Degraded;
      continue;
    }
    if (!R.complete()) {
      EXPECT_FALSE(R.degradedReason().empty()) << "schedule " << Schedule;
      ++Degraded;
    } else {
      EXPECT_EQ(renderSlice(R, *P), BaselineStr) << "schedule " << Schedule;
    }
  }
  // ~1/3 arming probability per point: plenty of schedules degrade.
  EXPECT_GT(Degraded, 10u);

  FI.reset();
  ThinExpansion HealedExp(*G, *PTA);
  SliceResult Healed = HealedExp.expandToTraditional(Seed);
  ASSERT_TRUE(Healed.complete());
  EXPECT_EQ(renderSlice(Healed, *P), BaselineStr);
}

// 200 seeded schedules against the snapshot warm-start path: a third
// pin the "snapshot.load" point (alternating Throw/Degrade), the rest
// roll the dice. loadSnapshot() must never throw; whatever fires, the
// session either warm-started or recorded a fallback, and its
// post-disarm answer is byte-identical to a fault-free cold session
// (never stale, never partial).
TEST(Chaos, SeededSnapshotLoadSchedulesNeverGoStale) {
  InjectorGuard Guard;
  const std::string Snap =
      (std::filesystem::temp_directory_path() / "tsl_chaos_snapshot.tslsnap")
          .string();
  {
    AnalysisSession Saver{std::string(Source)};
    ASSERT_TRUE(Saver.saveSnapshot(Snap).isOk()) << Saver.lastError().str();
  }
  const std::string Baseline = baselineSlice(false);

  FaultInjector &FI = FaultInjector::instance();
  uint64_t LoadFired = 0, WarmStarts = 0, Fallbacks = 0;
  for (uint64_t Schedule = 0; Schedule != 200; ++Schedule) {
    FI.reset();
    FI.setStallCapMs(2);
    FI.armRandomSchedule(0x4000 + Schedule);
    if (Schedule % 3 == 0)
      FI.arm("snapshot.load", /*AtPoll=*/1,
             Schedule % 2 ? FaultKind::Throw : FaultKind::Degrade);

    AnalysisSession S{std::string(Source)};
    Status L = S.loadSnapshot(Snap); // must not throw, whatever fires
    EXPECT_EQ(S.snapshotStats().Loads + S.snapshotStats().Fallbacks, 1u)
        << "schedule " << Schedule;
    if (S.snapshotStats().Loads)
      ++WarmStarts;
    else
      ++Fallbacks;
    if (FI.fired().count("snapshot.load")) {
      ++LoadFired;
      EXPECT_FALSE(L.isOk()) << "schedule " << Schedule;
      EXPECT_FALSE(S.snapshotStats().LastFallbackReason.empty());
    }

    // Disarm: warm-started or fallen back, the session answers
    // byte-identically to the fault-free baseline.
    FI.reset();
    Program *P = S.program();
    ASSERT_NE(P, nullptr) << "schedule " << Schedule;
    const SliceResult *R = S.sliceBackwardCached(lastSeed(*P), SliceMode::Thin);
    ASSERT_NE(R, nullptr)
        << "schedule " << Schedule << ": " << S.lastError().str();
    EXPECT_TRUE(R->complete()) << "schedule " << Schedule;
    EXPECT_EQ(renderSlice(*R, *P), Baseline) << "schedule " << Schedule;
  }
  EXPECT_GT(LoadFired, 0u) << "snapshot.load never fired";
  EXPECT_GT(WarmStarts, 0u);
  EXPECT_GT(Fallbacks, 0u);
  std::filesystem::remove(Snap);
}

// Deterministic replay: the same seed arms the same schedule and
// produces the same outcome, which is what makes a chaos failure
// reproducible from its logged seed.
TEST(Chaos, SchedulesAreDeterministicallyReplayable) {
  InjectorGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  for (uint64_t Seed : {7ull, 42ull, 123456789ull}) {
    auto RunOnce = [&](uint64_t S) {
      FI.reset();
      FI.setStallCapMs(2);
      FI.armRandomSchedule(S);
      AnalysisBudget B;
      B.BudgetMs = 60'000;
      B.start();
      AnalysisSession Sess(Source);
      Sess.setBudget(&B);
      Program *P = Sess.program();
      EXPECT_NE(P, nullptr);
      const SliceResult *R =
          Sess.sliceBackwardCached(lastSeed(*P), SliceMode::Thin);
      if (!R)
        return std::string("failed:") + Sess.lastError().str();
      if (!R->complete())
        return std::string("degraded:") + R->degradedReason();
      return std::string("complete:") + renderSlice(*R, *P);
    };
    EXPECT_EQ(RunOnce(Seed), RunOnce(Seed)) << "seed " << Seed;
  }
}
