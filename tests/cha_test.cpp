//===-- cha_test.cpp - Class hierarchy unit tests -------------------------------==//

#include "cg/ClassHierarchy.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;

  explicit Fixture(const std::string &Source) {
    DiagnosticEngine Diag;
    P = compileThinJ(Source, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (P)
      CH = std::make_unique<ClassHierarchy>(*P);
  }

  ClassDef *cls(const std::string &Name) {
    return P->findClass(P->strings().lookup(Name));
  }
  Method *method(const std::string &ClassName, const std::string &Name) {
    return cls(ClassName)->findMethod(P->strings().lookup(Name));
  }
};

const char *Zoo = R"(
class Animal {
  def speak(): string { return "..."; }
  def name(): string { return "animal"; }
}
class Cat extends Animal {
  def speak(): string { return "meow"; }
}
class Lion extends Cat {
  def speak(): string { return "roar"; }
}
class Dog extends Animal {
  def speak(): string { return "woof"; }
}
def main() {
  var a: Animal = new Cat();
  print(a.speak());
}
)";

} // namespace

TEST(ClassHierarchy, SubtypeBasics) {
  Fixture F(Zoo);
  const TypeTable &T = F.P->types();
  const Type *Animal = T.classType(F.cls("Animal"));
  const Type *Cat = T.classType(F.cls("Cat"));
  const Type *Lion = T.classType(F.cls("Lion"));
  const Type *Object = T.classType(F.P->objectClass());

  EXPECT_TRUE(F.CH->isSubtype(Cat, Animal));
  EXPECT_TRUE(F.CH->isSubtype(Lion, Animal));
  EXPECT_TRUE(F.CH->isSubtype(Lion, Cat));
  EXPECT_FALSE(F.CH->isSubtype(Animal, Cat));
  EXPECT_TRUE(F.CH->isSubtype(Cat, Cat));

  // Object is the top reference type; null the bottom.
  EXPECT_TRUE(F.CH->isSubtype(Cat, Object));
  EXPECT_TRUE(F.CH->isSubtype(T.stringType(), Object));
  EXPECT_TRUE(F.CH->isSubtype(T.arrayType(T.intType()), Object));
  EXPECT_TRUE(F.CH->isSubtype(T.nullType(), Cat));
  EXPECT_FALSE(F.CH->isSubtype(T.intType(), Object));
  // Arrays are invariant.
  EXPECT_FALSE(
      F.CH->isSubtype(T.arrayType(Cat), T.arrayType(Animal)));
}

TEST(ClassHierarchy, ResolveVirtual) {
  Fixture F(Zoo);
  Method *AnimalSpeak = F.method("Animal", "speak");
  EXPECT_EQ(F.CH->resolveVirtual(F.cls("Cat"), AnimalSpeak),
            F.cls("Cat")->findOwnMethod(AnimalSpeak->name()));
  EXPECT_EQ(F.CH->resolveVirtual(F.cls("Lion"), AnimalSpeak),
            F.cls("Lion")->findOwnMethod(AnimalSpeak->name()));
  // Inherited (not overridden) method resolves to the superclass impl.
  Method *AnimalName = F.method("Animal", "name");
  EXPECT_EQ(F.CH->resolveVirtual(F.cls("Lion"), AnimalName), AnimalName);
  // Unrelated runtime class resolves to null.
  EXPECT_EQ(F.CH->resolveVirtual(F.P->objectClass(), AnimalSpeak), nullptr);
}

TEST(ClassHierarchy, SubclassesOf) {
  Fixture F(Zoo);
  const auto &Subs = F.CH->subclassesOf(F.cls("Cat"));
  EXPECT_EQ(Subs.size(), 2u); // Cat and Lion.
  const auto &AnimalSubs = F.CH->subclassesOf(F.cls("Animal"));
  EXPECT_EQ(AnimalSubs.size(), 4u);
}

TEST(ClassHierarchy, ChaTargets) {
  Fixture F(Zoo);
  Method *AnimalSpeak = F.method("Animal", "speak");
  auto Targets = F.CH->chaTargets(AnimalSpeak);
  // Animal, Cat, Lion, Dog all provide (or inherit a distinct) speak.
  EXPECT_EQ(Targets.size(), 4u);
  Method *CatSpeak = F.cls("Cat")->findOwnMethod(AnimalSpeak->name());
  auto CatTargets = F.CH->chaTargets(CatSpeak);
  EXPECT_EQ(CatTargets.size(), 2u); // Cat's and Lion's.
}
