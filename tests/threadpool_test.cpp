//===-- threadpool_test.cpp - Shared work-stealing pool tests ------------------==//
//
// The pool contract every parallel analysis stage leans on: tasks run
// exactly once, imbalance is rebalanced by stealing, exceptions reach
// the submitter, shutdown drains the queues, and a tripped budget gate
// cancels the un-started remainder of a parallelFor.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace tsl;

namespace {

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.concurrency(), 4u);
  EXPECT_EQ(Pool.numWorkers(), 3u);

  constexpr unsigned N = 200;
  std::vector<std::atomic<unsigned>> Ran(N);
  std::vector<std::future<unsigned>> Futures;
  for (unsigned I = 0; I != N; ++I)
    Futures.push_back(Pool.submit([&Ran, I] {
      Ran[I].fetch_add(1);
      return I * 2;
    }));
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Futures[I].get(), I * 2);
  for (unsigned I = 0; I != N; ++I)
    EXPECT_EQ(Ran[I].load(), 1u);
  EXPECT_GE(Pool.tasksExecuted(), static_cast<uint64_t>(N));
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  constexpr std::size_t N = 1000;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](std::size_t I) { Hits[I].fetch_add(1); });
  for (std::size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, SingleThreadPoolRunsInlineWithoutWorkers) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  bool SameThread = false;
  auto F = Pool.submit([&] { SameThread = std::this_thread::get_id() == Caller; });
  F.get();
  EXPECT_TRUE(SameThread);
  unsigned Count = 0;
  Pool.parallelFor(17, [&](std::size_t) { ++Count; });
  EXPECT_EQ(Count, 17u);
}

// Guaranteed steal: a worker blocks inside its task after stuffing its
// own deque with subtasks. The blocked owner cannot pop them, external
// threads have no deque, so the only way the subtasks can complete is
// the other worker stealing them.
TEST(ThreadPool, StealsFromAnImbalancedWorkerDeque) {
  ThreadPool Pool(3); // Two workers: one hoards, one steals.
  constexpr unsigned N = 64;
  std::atomic<unsigned> Done{0};
  auto Outer = Pool.submit([&] {
    for (unsigned I = 0; I != N; ++I)
      Pool.submit([&Done] { Done.fetch_add(1); });
    // Block this worker until every subtask ran elsewhere.
    auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (Done.load() != N &&
           std::chrono::steady_clock::now() < Deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  Outer.get();
  EXPECT_EQ(Done.load(), N);
  EXPECT_GE(Pool.tasksStolen(), static_cast<uint64_t>(N));
}

TEST(ThreadPool, SubmitPropagatesExceptionsToTheFuture) {
  ThreadPool Pool(3);
  auto Bad = Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto Good = Pool.submit([] { return 41 + 1; });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  EXPECT_EQ(Good.get(), 42);
}

TEST(ThreadPool, ParallelForRethrowsTheFirstExceptionOnTheCaller) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Ran{0};
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](std::size_t I) {
                                  if (I == 3)
                                    throw std::logic_error("index 3");
                                  Ran.fetch_add(1);
                                }),
               std::logic_error);
  // The throw cancels un-started indices; started ones finished.
  EXPECT_LT(Ran.load(), 100u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasksBeforeJoining) {
  constexpr unsigned N = 100;
  std::atomic<unsigned> Done{0};
  std::vector<std::future<void>> Futures;
  {
    ThreadPool Pool(2);
    for (unsigned I = 0; I != N; ++I)
      Futures.push_back(Pool.submit([&Done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        Done.fetch_add(1);
      }));
    // Destruction races the queue: whatever is still queued must run,
    // not be dropped.
  }
  EXPECT_EQ(Done.load(), N);
  for (auto &F : Futures) {
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    F.get();
  }
}

TEST(ThreadPool, BudgetGateCancelsRemainingParallelForIndices) {
  ThreadPool Pool(2);
  SharedBudgetGate Gate(nullptr, "test.pool", /*StepCap=*/10);
  std::atomic<unsigned> Ran{0};
  Pool.parallelFor(
      1000,
      [&](std::size_t) {
        Gate.spend();
        Ran.fetch_add(1);
      },
      /*MaxConcurrency=*/0, &Gate);
  EXPECT_TRUE(Gate.exhausted());
  // At least the indices that tripped the cap ran; the long tail of
  // the queue was cancelled.
  EXPECT_GE(Ran.load(), 10u);
  EXPECT_LT(Ran.load(), 1000u);
}

// parallelFor from inside a pool task must not deadlock: the nested
// caller's lanes land in its own deque, and its helping-wait runs them
// itself if nobody steals.
TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Inner{0};
  auto F = Pool.submit([&] {
    Pool.parallelFor(50, [&](std::size_t) { Inner.fetch_add(1); });
  });
  F.get();
  EXPECT_EQ(Inner.load(), 50u);
}

// Crash-isolation regression (runs under TSan via the "parallel"
// label): a task throwing while the caller is in its helping-wait
// must not terminate a worker or wedge the drain — the first
// exception is rethrown on the caller, the remaining indices are
// cancelled through the gate (reason "exception"), and the SAME pool
// serves subsequent parallelFor batches completely.
TEST(ThreadPool, ThrowDuringHelpingWaitLeavesPoolUsable) {
  ThreadPool Pool(4);
  for (unsigned Round = 0; Round != 20; ++Round) {
    SharedBudgetGate Gate(nullptr, "test.pool", /*StepCap=*/0);
    std::atomic<unsigned> Ran{0};
    EXPECT_THROW(Pool.parallelFor(
                     64,
                     [&](std::size_t I) {
                       if (I == 5)
                         throw std::runtime_error("boom");
                       Ran.fetch_add(1);
                     },
                     /*MaxConcurrency=*/0, &Gate),
                 std::runtime_error);
    EXPECT_TRUE(Gate.exhausted());
    EXPECT_EQ(Gate.reason(), "exception");

    std::atomic<unsigned> After{0};
    Pool.parallelFor(100, [&](std::size_t) { After.fetch_add(1); });
    EXPECT_EQ(After.load(), 100u);
  }
}

// Same isolation without a gate: the exception still cancels the rest
// of the batch and rethrows on the caller, and the pool stays usable.
TEST(ThreadPool, ThrowWithoutGateStillRethrowsAndPoolSurvives) {
  ThreadPool Pool(3);
  EXPECT_THROW(Pool.parallelFor(32,
                                [&](std::size_t I) {
                                  if (I == 0)
                                    throw std::logic_error("first");
                                }),
               std::logic_error);
  std::atomic<unsigned> After{0};
  Pool.parallelFor(64, [&](std::size_t) { After.fetch_add(1); });
  EXPECT_EQ(After.load(), 64u);
}

// The watchdog's preemptive cancel flag must stop a batch whose tasks
// never poll the gate: once the budget is cancelled, parallelFor hands
// out no further indices.
TEST(ThreadPool, CancelledBudgetStopsNonPollingBatch) {
  ThreadPool Pool(2);
  AnalysisBudget B;
  B.BudgetMs = 60'000;
  B.start();
  SharedBudgetGate Gate(&B, "test.pool", /*StepCap=*/0);
  std::atomic<unsigned> Ran{0};
  Pool.parallelFor(
      1000,
      [&](std::size_t I) {
        // Tasks never call Gate.spend(); only the task boundary can
        // observe the cancellation.
        if (I == 0)
          B.cancel();
        Ran.fetch_add(1);
      },
      /*MaxConcurrency=*/0, &Gate);
  EXPECT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.reason(), "watchdog");
  EXPECT_LT(Ran.load(), 1000u);
}

} // namespace
