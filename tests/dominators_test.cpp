//===-- dominators_test.cpp - Dominator / control-dependence tests --------------==//
//
// Checks the Cooper-Harvey-Kennedy implementation against a naive
// reference dominator computation on both hand-built and
// frontend-lowered CFGs, and the Ferrante-Ottenstein-Warren control
// dependences on the classic structured shapes.
//
//===----------------------------------------------------------------------===//

#include "ir/ControlDep.h"
#include "ir/Dominators.h"
#include "ir/Instr.h"
#include "ir/Program.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

/// Builds a method whose CFG matches \p Succs (entry is node 0); every
/// multi-successor node gets a Branch, single-successor a Goto, and
/// sinks a Ret.
struct CfgFixture {
  Program P;
  Method *M;

  explicit CfgFixture(const std::vector<std::vector<unsigned>> &Succs) {
    M = P.addMethod(P.strings().intern("f"), nullptr, true,
                    P.types().voidType(), {});
    std::vector<BasicBlock *> Blocks;
    for (size_t I = 0; I != Succs.size(); ++I)
      Blocks.push_back(M->addBlock());
    M->setEntry(Blocks[0]);
    for (size_t I = 0; I != Succs.size(); ++I) {
      const auto &S = Succs[I];
      if (S.empty()) {
        Blocks[I]->append(std::make_unique<RetInstr>(nullptr));
      } else if (S.size() == 1) {
        Blocks[I]->append(std::make_unique<GotoInstr>(Blocks[S[0]]));
      } else {
        Local *C = M->addLocal(0, P.types().boolType(), true);
        Blocks[I]->append(std::make_unique<ConstBoolInstr>(C, true));
        Blocks[I]->append(
            std::make_unique<BranchInstr>(C, Blocks[S[0]], Blocks[S[1]]));
      }
    }
    M->renumber();
  }
};

/// O(n^2) reference: dominators via iterative set intersection.
std::vector<std::vector<bool>>
naiveDominators(const std::vector<std::vector<unsigned>> &Succs) {
  size_t N = Succs.size();
  std::vector<std::vector<unsigned>> Preds(N);
  for (size_t I = 0; I != N; ++I)
    for (unsigned S : Succs[I])
      Preds[S].push_back(static_cast<unsigned>(I));

  // Reachability from entry.
  std::vector<bool> Reach(N, false);
  std::vector<unsigned> Stack = {0};
  Reach[0] = true;
  while (!Stack.empty()) {
    unsigned Node = Stack.back();
    Stack.pop_back();
    for (unsigned S : Succs[Node])
      if (!Reach[S]) {
        Reach[S] = true;
        Stack.push_back(S);
      }
  }

  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
  Dom[0].assign(N, false);
  Dom[0][0] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I != N; ++I) {
      if (!Reach[I])
        continue;
      std::vector<bool> New(N, true);
      bool Any = false;
      for (unsigned Pred : Preds[I]) {
        if (!Reach[Pred])
          continue;
        Any = true;
        for (size_t J = 0; J != N; ++J)
          New[J] = New[J] && Dom[Pred][J];
      }
      if (!Any)
        New.assign(N, false);
      New[I] = true;
      if (New != Dom[I]) {
        Dom[I] = New;
        Changed = true;
      }
    }
  }
  return Dom;
}

void checkAgainstNaive(const std::vector<std::vector<unsigned>> &Succs) {
  CfgFixture F(Succs);
  DomTree DT(*F.M, /*Post=*/false);
  auto Ref = naiveDominators(Succs);
  for (unsigned A = 0; A != Succs.size(); ++A)
    for (unsigned B = 0; B != Succs.size(); ++B) {
      if (!DT.isReachable(B))
        continue;
      EXPECT_EQ(DT.dominates(A, B), static_cast<bool>(Ref[B][A]))
          << "dominates(" << A << ", " << B << ") mismatch";
    }
}

/// Deterministic pseudo-random CFG over N nodes.
std::vector<std::vector<unsigned>> randomCfg(unsigned N, uint64_t Seed) {
  std::vector<std::vector<unsigned>> Succs(N);
  uint64_t S = Seed * 2654435761u + 1;
  auto Next = [&S]() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (unsigned I = 0; I + 1 < N; ++I) {
    unsigned Kind = Next() % 3;
    if (Kind == 0) {
      Succs[I] = {I + 1};
    } else {
      unsigned A = Next() % N;
      unsigned B = Next() % N;
      // Keep at least one forward edge so most nodes are reachable.
      Succs[I] = {I + 1, Next() % 2 ? A : B};
    }
  }
  return Succs; // Last node is a sink.
}

} // namespace

//===----------------------------------------------------------------------===//
// Dominators
//===----------------------------------------------------------------------===//

TEST(Dominators, Diamond) {
  //   0 -> 1, 2; 1 -> 3; 2 -> 3
  CfgFixture F({{1, 2}, {3}, {3}, {}});
  DomTree DT(*F.M, false);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 0);
  EXPECT_EQ(DT.idom(3), 0); // Join dominated by the branch only.
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(3, 3));
}

TEST(Dominators, LoopBackEdge) {
  // 0 -> 1; 1 -> 2, 3; 2 -> 1; 3 exits.
  CfgFixture F({{1}, {2, 3}, {1}, {}});
  DomTree DT(*F.M, false);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 1);
  EXPECT_EQ(DT.idom(3), 1);
}

TEST(Dominators, UnreachableBlocksHandled) {
  // Node 2 is unreachable.
  CfgFixture F({{1}, {}, {1}});
  DomTree DT(*F.M, false);
  EXPECT_TRUE(DT.isReachable(1));
  EXPECT_FALSE(DT.isReachable(2));
}

TEST(Dominators, FrontiersOnDiamond) {
  CfgFixture F({{1, 2}, {3}, {3}, {}});
  DomTree DT(*F.M, false);
  EXPECT_EQ(DT.frontier(1), (std::vector<unsigned>{3}));
  EXPECT_EQ(DT.frontier(2), (std::vector<unsigned>{3}));
  EXPECT_TRUE(DT.frontier(0).empty());
}

TEST(Dominators, MatchesNaiveOnRandomGraphs) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed)
    checkAgainstNaive(randomCfg(3 + Seed % 12, Seed));
}

//===----------------------------------------------------------------------===//
// Post-dominators
//===----------------------------------------------------------------------===//

TEST(PostDominators, Diamond) {
  CfgFixture F({{1, 2}, {3}, {3}, {}});
  DomTree PDT(*F.M, true);
  // Join post-dominates everything; exit is virtual.
  EXPECT_TRUE(PDT.dominates(3, 0));
  EXPECT_TRUE(PDT.dominates(3, 1));
  EXPECT_FALSE(PDT.dominates(1, 0));
}

TEST(PostDominators, InfiniteLoopGetsAttached) {
  // 0 -> 1; 1 -> 1 (no exit). The pseudo-edge machinery must still
  // produce a total tree.
  CfgFixture F({{1}, {1}});
  DomTree PDT(*F.M, true);
  EXPECT_EQ(PDT.numNodes(), 3u); // Two blocks + virtual exit.
  EXPECT_TRUE(PDT.isReachable(0));
  EXPECT_TRUE(PDT.isReachable(1));
}

//===----------------------------------------------------------------------===//
// Control dependence
//===----------------------------------------------------------------------===//

TEST(ControlDep, IfThenElse) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var c = readInt() > 0;
  if (c) { print("t"); } else { print("f"); }
  print("after");
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  const Method *Main = P->mainMethod();
  ControlDeps CD(*Main);

  // Find the prints.
  const Instr *ThenPrint = nullptr, *ElsePrint = nullptr,
              *AfterPrint = nullptr;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instrs())
      if (isa<PrintInstr>(I.get())) {
        if (!ThenPrint)
          ThenPrint = I.get();
        else if (!ElsePrint)
          ElsePrint = I.get();
        else
          AfterPrint = I.get();
      }
  ASSERT_NE(AfterPrint, nullptr);

  EXPECT_EQ(CD.controllingBranches(ThenPrint).size(), 1u);
  EXPECT_EQ(CD.controllingBranches(ElsePrint).size(), 1u);
  EXPECT_TRUE(CD.controllingBranches(AfterPrint).empty());
}

TEST(ControlDep, WhileBodyDependsOnHeader) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var i = 0;
  while (i < 3) {
    print(i);
    i = i + 1;
  }
  print("done");
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  const Method *Main = P->mainMethod();
  ControlDeps CD(*Main);
  const Instr *BodyPrint = nullptr, *DonePrint = nullptr;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instrs())
      if (isa<PrintInstr>(I.get())) {
        if (!BodyPrint)
          BodyPrint = I.get();
        else
          DonePrint = I.get();
      }
  ASSERT_NE(DonePrint, nullptr);
  EXPECT_FALSE(CD.controllingBranches(BodyPrint).empty());
  EXPECT_TRUE(CD.controllingBranches(DonePrint).empty());
}

TEST(ControlDep, NestedIfAccumulates) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var a = readInt() > 0;
  var b = readInt() > 1;
  if (a) {
    if (b) {
      print("inner");
    }
  }
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  const Method *Main = P->mainMethod();
  ControlDeps CD(*Main);
  const Instr *Inner = nullptr;
  for (const auto &BB : Main->blocks())
    for (const auto &I : BB->instrs())
      if (isa<PrintInstr>(I.get()))
        Inner = I.get();
  ASSERT_NE(Inner, nullptr);
  // Directly, the inner print depends only on the inner branch (FOW
  // semantics); the outer branch controls it transitively, through the
  // inner conditional's own dependence.
  auto Direct = CD.controllingBranches(Inner);
  ASSERT_EQ(Direct.size(), 1u);
  auto Outer = CD.controllingBranches(Direct[0]);
  ASSERT_EQ(Outer.size(), 1u);
  EXPECT_TRUE(CD.controllingBranches(Outer[0]).empty());
}

TEST(ControlDep, LoopHeaderSelfDependence) {
  // The while-header condition block is control dependent on itself
  // (it runs again iff it takes the loop).
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var i = 0;
  while (i < 3) { i = i + 1; }
  print(i);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  const Method *Main = P->mainMethod();
  ControlDeps CD(*Main);
  bool HeaderSelfDep = false;
  for (const auto &BB : Main->blocks()) {
    Instr *Term = BB->terminator();
    if (!Term || !isa<BranchInstr>(Term))
      continue;
    for (unsigned Controller : CD.controllers(BB->id()))
      if (Controller == BB->id())
        HeaderSelfDep = true;
  }
  EXPECT_TRUE(HeaderSelfDep);
}
