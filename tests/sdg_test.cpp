//===-- sdg_test.cpp - SDG construction unit tests ------------------------------==//

#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  ModRefResult *MR = nullptr;
  SDG *G = nullptr;

  explicit Fixture(const std::string &Source, bool CS = false,
                   PTAOptions PtaOpts = {}) {
    S = std::make_unique<AnalysisSession>(Source);
    S->setPTAOptions(PtaOpts);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    MR = S->modRef();
    SDGOptions Opts;
    Opts.ContextSensitive = CS;
    S->setSDGOptions(Opts);
    G = S->sdg();
  }

  const Instr *find(InstrKind K, unsigned Skip = 0) {
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->kind() == K) {
            if (Skip == 0)
              return I.get();
            --Skip;
          }
    return nullptr;
  }

  /// True when an edge From -> To with kind K exists (any clones).
  bool hasEdge(const Instr *From, const Instr *To, SDGEdgeKind K) {
    for (unsigned FromNode : G->nodesFor(From))
      for (unsigned EdgeId : G->outEdges(FromNode)) {
        const SDGEdge &E = G->edge(EdgeId);
        if (E.K == K && G->node(E.To).I == To)
          return true;
      }
    return false;
  }
};

} // namespace

TEST(SDG, FlowVsBaseFlowClassification) {
  Fixture F(R"(
class C { var f: Object; }
def main() {
  var c = new C();
  var v = new Object();
  c.f = v;
  var r = c.f;
  print(r == null);
}
)");
  const Instr *NewC = F.find(InstrKind::New, 0);
  const Instr *NewV = F.find(InstrKind::New, 1);
  const Instr *Store = F.find(InstrKind::Store);
  const Instr *Load = F.find(InstrKind::Load);
  ASSERT_TRUE(NewC && NewV && Store && Load);

  // The stored value reaches the store as Flow; the base as BaseFlow.
  // (Through the Move of the var decls.)
  bool FoundValueFlow = false, FoundBaseFlow = false;
  for (unsigned Node : F.G->nodesFor(Store))
    for (unsigned EdgeId : F.G->inEdges(Node)) {
      const SDGEdge &E = F.G->edge(EdgeId);
      if (E.K == SDGEdgeKind::Flow)
        FoundValueFlow = true;
      if (E.K == SDGEdgeKind::BaseFlow)
        FoundBaseFlow = true;
    }
  EXPECT_TRUE(FoundValueFlow);
  EXPECT_TRUE(FoundBaseFlow);

  // Heap flow: store -> load is a Flow (producer) edge.
  EXPECT_TRUE(F.hasEdge(Store, Load, SDGEdgeKind::Flow));
}

TEST(SDG, NoHeapEdgeWithoutAliasing) {
  Fixture F(R"(
class C { var f: Object; }
def main() {
  var c1 = new C();
  var c2 = new C();
  c1.f = new Object();
  var r = c2.f;
  print(r == null);
}
)");
  const Instr *Store = F.find(InstrKind::Store);
  const Instr *Load = F.find(InstrKind::Load);
  ASSERT_TRUE(Store && Load);
  EXPECT_FALSE(F.hasEdge(Store, Load, SDGEdgeKind::Flow));
}

TEST(SDG, StaticFieldEdges) {
  Fixture F(R"(
class G { static var x: Object; }
def main() {
  G.x = new Object();
  var r = G.x;
  print(r == null);
}
)");
  // $clinit default-store and main's store both flow to the load.
  const Instr *Load = nullptr;
  for (const auto &M : F.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<LoadInstr>(I.get()))
          Load = I.get();
  ASSERT_NE(Load, nullptr);
  unsigned HeapIn = 0;
  for (unsigned Node : F.G->nodesFor(Load))
    for (unsigned EdgeId : F.G->inEdges(Node)) {
      const SDGEdge &E = F.G->edge(EdgeId);
      if (E.K == SDGEdgeKind::Flow &&
          F.G->node(E.From).I->kind() == InstrKind::Store)
        ++HeapIn;
    }
  EXPECT_EQ(HeapIn, 2u);
}

TEST(SDG, ControlEdgesFromBranches) {
  Fixture F(R"(
def main() {
  if (readInt() > 0) {
    print("yes");
  }
}
)");
  const Instr *Print = F.find(InstrKind::Print);
  const Instr *Branch = F.find(InstrKind::Branch);
  ASSERT_TRUE(Print && Branch);
  EXPECT_TRUE(F.hasEdge(Branch, Print, SDGEdgeKind::Control));
}

TEST(SDG, VirtualDispatchIsControl) {
  Fixture F(R"(
class A { def m(): int { return 1; } }
def main() {
  var a = new A();
  print(a.m());
}
)");
  const Instr *Call = F.find(InstrKind::Call);
  ASSERT_NE(Call, nullptr);
  bool RecvControl = false;
  for (unsigned Node : F.G->nodesFor(Call))
    for (unsigned EdgeId : F.G->inEdges(Node)) {
      const SDGEdge &E = F.G->edge(EdgeId);
      if (E.K == SDGEdgeKind::Control)
        RecvControl = true;
    }
  EXPECT_TRUE(RecvControl);
}

TEST(SDG, ParamAndReturnLinkage) {
  Fixture F(R"(
def id(x: int): int { return x; }
def main() { print(id(5)); }
)");
  const Instr *Call = F.find(InstrKind::Call);
  ASSERT_NE(Call, nullptr);
  // The call node receives a ParamOut edge from id's return.
  bool GotParamOut = false, GotParamIn = false, GotActualIn = false;
  for (unsigned Node : F.G->nodesFor(Call))
    for (unsigned EdgeId : F.G->inEdges(Node))
      GotParamOut |= F.G->edge(EdgeId).K == SDGEdgeKind::ParamOut;
  for (unsigned EdgeId = 0; EdgeId != F.G->numEdges(); ++EdgeId) {
    const SDGEdge &E = F.G->edge(EdgeId);
    GotParamIn |= E.K == SDGEdgeKind::ParamIn;
    GotActualIn |=
        F.G->node(E.To).K == SDGNodeKind::ScalarActualIn;
  }
  EXPECT_TRUE(GotParamOut);
  EXPECT_TRUE(GotParamIn);
  EXPECT_TRUE(GotActualIn);
}

TEST(SDG, CloneLevelNodesForContainerMethods) {
  Fixture F(R"(
class Vector {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
}
def main() {
  var v1 = new Vector();
  var v2 = new Vector();
  v1.add(new Object());
  v2.add(new Object());
}
)");
  // Vector.add statements are cloned per receiver context.
  const Instr *ArrStore = F.find(InstrKind::ArrayStore);
  ASSERT_NE(ArrStore, nullptr);
  EXPECT_EQ(F.G->nodesFor(ArrStore).size(), 2u);
}

TEST(SDG, NoObjSensCollapsesClones) {
  PTAOptions NoObj;
  NoObj.ObjSensContainers = false;
  Fixture F(R"(
class Vector {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
}
def main() {
  var v1 = new Vector();
  var v2 = new Vector();
  v1.add(new Object());
  v2.add(new Object());
}
)",
            /*CS=*/false, NoObj);
  const Instr *ArrStore = F.find(InstrKind::ArrayStore);
  ASSERT_NE(ArrStore, nullptr);
  EXPECT_EQ(F.G->nodesFor(ArrStore).size(), 1u);
}

TEST(SDG, ContextSensitiveVariantHasHeapParams) {
  Fixture F(R"(
class Cell { var v: Object; }
def write(c: Cell) { c.v = new Object(); }
def read(c: Cell): Object { return c.v; }
def main() {
  var c = new Cell();
  write(c);
  print(read(c) == null);
}
)",
            /*CS=*/true);
  EXPECT_GT(F.G->numHeapParamNodes(), 0u);
  // Heap formal-in exists for read, formal-out for write.
  const Method *Write = nullptr, *Read = nullptr;
  for (const auto &M : F.P->methods()) {
    std::string Name = M->qualifiedName(F.P->strings());
    if (Name == "write")
      Write = M.get();
    if (Name == "read")
      Read = M.get();
  }
  BitSet WriteMod = F.MR->modOf(Write);
  ASSERT_EQ(WriteMod.count(), 1u);
  unsigned Part = WriteMod.toVector().front();
  EXPECT_GE(F.G->heapNodeFor(SDGNodeKind::HeapFormalOut, Write, Part), 0);
  EXPECT_GE(F.G->heapNodeFor(SDGNodeKind::HeapFormalIn, Read, Part), 0);
  // No direct interprocedural heap edge store -> load in CS mode.
  const Instr *Store = F.find(InstrKind::Store);
  const Instr *Load = F.find(InstrKind::Load);
  EXPECT_FALSE(F.hasEdge(Store, Load, SDGEdgeKind::Flow));
}

TEST(SDG, StatementCountsExcludeHeapParams) {
  Fixture CI("def main() { print(1); }");
  EXPECT_EQ(CI.G->numHeapParamNodes(), 0u);
  EXPECT_GT(CI.G->numStmtNodes(), 0u);
  EXPECT_EQ(CI.G->numNodes(), CI.G->numStmtNodes());
}

TEST(SDG, EdgeDeduplication) {
  Fixture F("def main() { var x = 1; print(x + x); }");
  // x used twice by the same BinOp: one Flow edge, not two.
  const Instr *BinOp = F.find(InstrKind::BinOp);
  ASSERT_NE(BinOp, nullptr);
  unsigned FlowIn = 0;
  for (unsigned Node : F.G->nodesFor(BinOp))
    for (unsigned EdgeId : F.G->inEdges(Node))
      FlowIn += F.G->edge(EdgeId).K == SDGEdgeKind::Flow;
  EXPECT_EQ(FlowIn, 1u);
}
