//===-- engine_test.cpp - Batched slice-engine tests ----------------------------==//
//
// Differential coverage for SliceEngine: every configuration of the
// batch path (1 and 4 workers, context-insensitive and -sensitive,
// summary cache cold and warm, both slice modes) must produce
// statement-identical results to the single-seed reference slicers —
// sliceBackwardLegacy for CI, TabulationSlicer::slice for CS — plus
// unit coverage of dedup, the condensation cache, epoch invalidation,
// and batch-wide budget degradation. These tests carry the "engine"
// ctest label and are the set the TSan tree runs.

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace tsl;

namespace {

struct Compiled {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *CI = nullptr;
  SDG *CS = nullptr;
};

Compiled compile(const std::string &Source, bool WithCS = false) {
  Compiled C;
  C.S = std::make_unique<AnalysisSession>(Source);
  C.P = C.S->program();
  EXPECT_NE(C.P, nullptr) << C.S->diagnostics().str();
  if (!C.P)
    return C;
  C.PTA = C.S->pointsTo();
  C.CI = C.S->sdg();
  if (WithCS) {
    SDGOptions CSOpts;
    CSOpts.ContextSensitive = true;
    C.S->setSDGOptions(CSOpts);
    C.CS = C.S->sdg();
    C.S->setSDGOptions(SDGOptions());
  }
  return C;
}

/// Node- and statement-identity between a batch result and its
/// single-seed reference.
void expectIdentical(const SliceResult &Got, const SliceResult &Want,
                     const std::string &What) {
  EXPECT_TRUE(Got.nodeSet() == Want.nodeSet()) << What << ": node sets differ";
  EXPECT_TRUE(Got.statements() == Want.statements())
      << What << ": statement lists differ";
}

std::string tag(const char *Case, SliceMode Mode, unsigned Jobs,
                std::size_t Seed) {
  return std::string(Case) + (Mode == SliceMode::Thin ? "/thin" : "/trad") +
         "/jobs" + std::to_string(Jobs) + "/seed" + std::to_string(Seed);
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: eval cases
//===----------------------------------------------------------------------===//

// Every evaluation case's seed, batched per shared program graph, must
// match the legacy edge-record slicer seed by seed — both modes, both
// worker counts.
TEST(Engine, DifferentialEvalCases) {
  std::map<std::string, Compiled> Programs;
  std::map<std::string, std::vector<const Instr *>> SeedsOf;

  auto Add = [&](const WorkloadProgram &Prog, const std::string &Marker) {
    auto It = Programs.find(Prog.Name);
    if (It == Programs.end())
      It = Programs.emplace(Prog.Name, compile(Prog.Source)).first;
    if (!It->second.P)
      return;
    const Instr *Seed = instrAtLine(*It->second.P, Prog.markerLine(Marker));
    if (Seed)
      SeedsOf[Prog.Name].push_back(Seed);
  };
  for (const BugCase &Case : debuggingCases())
    Add(Case.Prog, Case.SeedMarker);
  for (const CastCase &Case : toughCastCases())
    Add(Case.Prog,
        Case.SeedMarker.empty() ? Case.CastMarker : Case.SeedMarker);
  ASSERT_FALSE(SeedsOf.empty());

  for (auto &[Name, Seeds] : SeedsOf) {
    const Compiled &C = Programs.at(Name);
    SliceEngine Engine(*C.CI);
    for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
      // Per-seed reference slices, computed once per mode.
      std::vector<SliceResult> Ref;
      for (const Instr *Seed : Seeds)
        Ref.push_back(sliceBackwardLegacy(*C.CI, Seed, Mode));
      for (unsigned Jobs : {1u, 4u}) {
        BatchOptions Opts;
        Opts.Mode = Mode;
        Opts.Jobs = Jobs;
        std::vector<SliceResult> Got = Engine.sliceBackwardBatch(Seeds, Opts);
        ASSERT_EQ(Got.size(), Seeds.size());
        for (std::size_t I = 0; I != Seeds.size(); ++I)
          expectIdentical(Got[I], Ref[I], tag(Name.c_str(), Mode, Jobs, I));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Differential: 50 generated seeds, context-insensitive
//===----------------------------------------------------------------------===//

TEST(Engine, DifferentialGeneratedSeedsCI) {
  WorkloadProgram W =
      padWorkload(debuggingCases().front().Prog, "ET", /*PadClasses=*/4,
                  /*MethodsPerClass=*/4);
  Compiled C = compile(W.Source);
  ASSERT_NE(C.P, nullptr);
  std::vector<const Instr *> Seeds = collectSliceSeeds(*C.P, 50);
  ASSERT_EQ(Seeds.size(), 50u);

  SliceEngine Engine(*C.CI);
  for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
    std::vector<SliceResult> Ref;
    for (const Instr *Seed : Seeds)
      Ref.push_back(sliceBackwardLegacy(*C.CI, Seed, Mode));
    for (unsigned Jobs : {1u, 4u}) {
      BatchOptions Opts;
      Opts.Mode = Mode;
      Opts.Jobs = Jobs;
      std::vector<SliceResult> Got = Engine.sliceBackwardBatch(Seeds, Opts);
      ASSERT_EQ(Got.size(), Seeds.size());
      EXPECT_EQ(Engine.stats().Queries, 50u);
      for (std::size_t I = 0; I != Seeds.size(); ++I)
        expectIdentical(Got[I], Ref[I], tag("generated", Mode, Jobs, I));
    }
  }
}

//===----------------------------------------------------------------------===//
// Differential: context-sensitive, summary cache cold and warm
//===----------------------------------------------------------------------===//

TEST(Engine, DifferentialContextSensitive) {
  Compiled C = compile(debuggingCases().front().Prog.Source, /*WithCS=*/true);
  ASSERT_NE(C.P, nullptr);
  std::vector<const Instr *> Seeds = collectSliceSeeds(*C.P, 50);
  ASSERT_FALSE(Seeds.empty());

  SliceEngine Engine(*C.CS);
  SummaryCache Cache;
  for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
    TabulationSlicer Ref(*C.CS, Mode);
    std::vector<SliceResult> Want;
    for (const Instr *Seed : Seeds)
      Want.push_back(Ref.slice(Seed));
    bool First = true; // First batch of this mode misses the cache.
    for (bool Warm : {false, true}) {
      for (unsigned Jobs : {1u, 4u}) {
        BatchOptions Opts;
        Opts.Mode = Mode;
        Opts.ContextSensitive = true;
        Opts.Jobs = Jobs;
        Opts.Summaries = &Cache;
        std::vector<SliceResult> Got = Engine.sliceBackwardBatch(Seeds, Opts);
        ASSERT_EQ(Got.size(), Seeds.size());
        EXPECT_EQ(Engine.stats().SummariesReused, !First);
        First = false;
        for (std::size_t I = 0; I != Seeds.size(); ++I)
          expectIdentical(Got[I], Want[I],
                          tag(Warm ? "cs-warm" : "cs-cold", Mode, Jobs, I));
      }
    }
  }
  // Both modes' summary sets live in the cache and the warm batches
  // hit it.
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_GT(Cache.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Dedup
//===----------------------------------------------------------------------===//

TEST(Engine, DeduplicatesSeeds) {
  Compiled C = compile(R"(
def main() {
  var a = readInt();
  var b = a + 1;
  print(a);
  print(b);
}
)");
  ASSERT_NE(C.P, nullptr);
  const Instr *A = instrAtLine(*C.P, 5); // print(a)
  const Instr *B = instrAtLine(*C.P, 6); // print(b)
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  SliceEngine Engine(*C.CI);
  std::vector<const Instr *> Seeds{A, B, A, A, B};
  std::vector<SliceResult> Got = Engine.sliceBackwardBatch(Seeds);
  ASSERT_EQ(Got.size(), 5u);
  EXPECT_EQ(Engine.stats().Queries, 5u);
  EXPECT_EQ(Engine.stats().UniqueQueries, 2u);
  // Duplicate positions carry the unique query's result.
  EXPECT_TRUE(Got[0].nodeSet() == Got[2].nodeSet());
  EXPECT_TRUE(Got[0].nodeSet() == Got[3].nodeSet());
  EXPECT_TRUE(Got[1].nodeSet() == Got[4].nodeSet());
  for (std::size_t I = 0; I != Seeds.size(); ++I)
    expectIdentical(Got[I],
                    sliceBackwardLegacy(*C.CI, Seeds[I], SliceMode::Thin),
                    tag("dedup", SliceMode::Thin, 1, I));
}

TEST(Engine, EmptyBatch) {
  Compiled C = compile("def main() { print(1); }");
  ASSERT_NE(C.P, nullptr);
  SliceEngine Engine(*C.CI);
  EXPECT_TRUE(Engine.sliceBackwardBatch({}).empty());
  EXPECT_EQ(Engine.stats().Queries, 0u);
  EXPECT_EQ(Engine.stats().UniqueQueries, 0u);
}

//===----------------------------------------------------------------------===//
// Condensation cache
//===----------------------------------------------------------------------===//

TEST(Engine, CondensationCachedPerModeAndEpoch) {
  Compiled C = compile(R"(
def main() {
  var a = readInt();
  var b = a * 2;
  print(b);
}
)");
  ASSERT_NE(C.P, nullptr);
  const Instr *Seed = instrAtLine(*C.P, 5);
  ASSERT_NE(Seed, nullptr);
  SliceEngine Engine(*C.CI);

  BatchOptions Thin;
  Engine.sliceBackwardBatch({Seed}, Thin);
  EXPECT_FALSE(Engine.stats().CondensationReused);
  Engine.sliceBackwardBatch({Seed}, Thin);
  EXPECT_TRUE(Engine.stats().CondensationReused);

  // A different mode masks a different subgraph: its first batch
  // builds, its second reuses.
  BatchOptions Trad;
  Trad.Mode = SliceMode::Traditional;
  Engine.sliceBackwardBatch({Seed}, Trad);
  EXPECT_FALSE(Engine.stats().CondensationReused);
  Engine.sliceBackwardBatch({Seed}, Trad);
  EXPECT_TRUE(Engine.stats().CondensationReused);

  // Any graph mutation bumps the epoch and invalidates every cached
  // condensation. A Flow self-edge is semantically inert, so the
  // post-mutation batch must still match the reference slicer.
  bool Added = false;
  for (unsigned N = 0; N != C.CI->numNodes() && !Added; ++N)
    Added = C.CI->addEdge(N, N, SDGEdgeKind::Flow);
  ASSERT_TRUE(Added);
  std::vector<SliceResult> Got = Engine.sliceBackwardBatch({Seed}, Thin);
  EXPECT_FALSE(Engine.stats().CondensationReused);
  expectIdentical(Got.front(),
                  sliceBackwardLegacy(*C.CI, Seed, SliceMode::Thin),
                  "post-epoch-bump");
  Engine.sliceBackwardBatch({Seed}, Thin);
  EXPECT_TRUE(Engine.stats().CondensationReused);
}

//===----------------------------------------------------------------------===//
// Batch-wide budget
//===----------------------------------------------------------------------===//

TEST(Engine, BatchBudgetDegradesSoundly) {
  WorkloadProgram W =
      padWorkload(debuggingCases().front().Prog, "EB", /*PadClasses=*/2,
                  /*MethodsPerClass=*/4);
  Compiled C = compile(W.Source);
  ASSERT_NE(C.P, nullptr);
  std::vector<const Instr *> Seeds = collectSliceSeeds(*C.P, 20);
  ASSERT_FALSE(Seeds.empty());

  SliceEngine Engine(*C.CI);
  std::vector<SliceResult> Full = Engine.sliceBackwardBatch(Seeds);

  AnalysisBudget Budget;
  Budget.MaxSlicePops = 3; // Trips almost immediately.
  BatchOptions Opts;
  Opts.Budget = &Budget;
  std::vector<SliceResult> Capped = Engine.sliceBackwardBatch(Seeds, Opts);
  ASSERT_EQ(Capped.size(), Full.size());

  bool AnyDegraded = false;
  for (std::size_t I = 0; I != Capped.size(); ++I) {
    if (!Capped[I].complete()) {
      AnyDegraded = true;
      EXPECT_FALSE(Capped[I].degradedReason().empty());
    }
    // A capped slice is a subset of the uncapped one (sound
    // under-approximation).
    Capped[I].nodeSet().forEach([&](unsigned Node) {
      EXPECT_TRUE(Full[I].containsNode(Node))
          << "seed " << I << " node " << Node;
    });
  }
  EXPECT_TRUE(AnyDegraded);
}
