//===-- figures_test.cpp - End-to-end tests on the paper's figures -------------==//
//
// Compiles the paper's running examples (Figures 1, 2, 4, 5), runs the
// full pipeline (points-to, SDG, slicers, interpreter), and checks the
// statement sets the paper derives by hand.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Workload.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Inspection.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

/// Everything the figure tests need, built once per workload.
struct Pipeline {
  WorkloadProgram W;
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;

  explicit Pipeline(WorkloadProgram Workload) : W(std::move(Workload)) {
    S = std::make_unique<AnalysisSession>(W.Source);
    P = S->program();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
  }

  bool ok() const { return P != nullptr; }

  const Instr *at(const std::string &Marker) const {
    unsigned Line = W.markerLine(Marker);
    EXPECT_NE(Line, 0u) << "unknown marker " << Marker;
    const Instr *I = instrAtLine(*P, Line);
    EXPECT_NE(I, nullptr) << "no instruction at marker " << Marker;
    return I;
  }

  bool sliceHasMarker(const SliceResult &S, const std::string &Marker) const {
    unsigned Line = W.markerLine(Marker);
    SourceLine SL = sourceLineAt(*P, Line);
    return SL.M && S.containsLine(SL.M, Line);
  }
};

TEST(Figure2, ThinSliceIsProducersOnly) {
  Pipeline PL(makeFigure2());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  ASSERT_TRUE(verifyProgram(*PL.P).empty());

  SliceResult Thin = sliceBackward(*PL.G, PL.at("seed"), SliceMode::Thin);
  // Producers: the seed, the store w.f = y, and y = new B().
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "seed"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "producer-store"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "producer-alloc"));
  // Explainers excluded: aliasing copies, the conditional, the A alloc.
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "alias1"));
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "alias2"));
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "cond"));
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "base-alloc"));

  SliceResult Trad =
      sliceBackward(*PL.G, PL.at("seed"), SliceMode::Traditional);
  // The traditional slice contains everything.
  for (const char *Marker : {"seed", "producer-store", "producer-alloc",
                             "alias1", "alias2", "cond", "base-alloc"})
    EXPECT_TRUE(PL.sliceHasMarker(Trad, Marker)) << Marker;

  // Thin is a subset of traditional.
  BitSet ThinNodes = Thin.nodeSet();
  ThinNodes.subtract(Trad.nodeSet());
  EXPECT_TRUE(ThinNodes.empty());
}

TEST(Figure2, ExpansionRecoversTraditional) {
  Pipeline PL(makeFigure2());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  ThinExpansion Exp(*PL.G, *PL.PTA);
  SliceResult Expanded = Exp.expandToTraditional(PL.at("seed"));
  SliceResult Trad =
      sliceBackward(*PL.G, PL.at("seed"), SliceMode::Traditional);
  EXPECT_TRUE(Expanded.nodeSet() == Trad.nodeSet());
}

TEST(Figure1, ThinSliceFindsTheSubstringBug) {
  Pipeline PL(makeFigure1());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  ASSERT_TRUE(verifyProgram(*PL.P).empty());

  SliceResult Thin = sliceBackward(*PL.G, PL.at("seed"), SliceMode::Thin);
  // The producer chain of Figure 1: the buggy substring, the Vector
  // add/get, and the array write/read inside Vector.
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "bug"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "add"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "get"));
  // Excluded: the SessionState plumbing only moves the Vector (base
  // pointer), not the strings.
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "setnames"));

  SliceResult Trad =
      sliceBackward(*PL.G, PL.at("seed"), SliceMode::Traditional);
  EXPECT_TRUE(PL.sliceHasMarker(Trad, "setnames"));
  EXPECT_GT(Trad.sizeStmts(), Thin.sizeStmts());
}

TEST(Figure1, InterpreterReproducesTheFailure) {
  Pipeline PL(makeFigure1());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  InterpOptions Opts;
  Opts.InputInts = {1};
  Opts.InputLines = {"John Doe"};
  InterpResult R = interpret(*PL.P, Opts);
  ASSERT_TRUE(R.Completed) << R.Error;
  ASSERT_EQ(R.Output.size(), 1u);
  // The off-by-one bug drops the last letter: "Joh" instead of "John".
  EXPECT_EQ(R.Output[0], "FIRST NAME: Joh");
}

TEST(Figure4, ExpansionExplainsTheAliasing) {
  Pipeline PL(makeFigure4());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();

  // Slicing from the conditional's read (line 10 in the paper): the
  // thin slice has the open-flag producers but not the aliasing story.
  SliceResult Thin = sliceBackward(*PL.G, PL.at("readopen"), SliceMode::Thin);
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "openfield-true"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "openfield-false"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "isopen"));
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "file-alloc"));
  EXPECT_FALSE(PL.sliceHasMarker(Thin, "vec-add"));

  // Expansion (Question 1): explain why close()'s this and isOpen()'s
  // this alias — the store in close() and the load in isOpen().
  const Instr *Store =
      heapAccessAtLine(*PL.P, PL.W.markerLine("openfield-false"));
  const Instr *Load = heapAccessAtLine(*PL.P, PL.W.markerLine("isopen"));
  ASSERT_NE(Store, nullptr);
  ASSERT_NE(Load, nullptr);
  ThinExpansion Exp(*PL.G, *PL.PTA);
  SliceResult Aliasing = Exp.explainAliasing(Store, Load);
  EXPECT_TRUE(PL.sliceHasMarker(Aliasing, "file-alloc"));
  EXPECT_TRUE(PL.sliceHasMarker(Aliasing, "vec-add"));
  EXPECT_TRUE(PL.sliceHasMarker(Aliasing, "vec-get-1"));
  EXPECT_TRUE(PL.sliceHasMarker(Aliasing, "vec-get-2"));

  // Question 2: the throw's controlling conditional is the if.
  std::vector<const Instr *> Controls =
      Exp.controlExplainers(PL.at("seed"));
  bool FoundCond = false;
  for (const Instr *C : Controls)
    if (C->loc().Line == PL.W.markerLine("cond"))
      FoundCond = true;
  EXPECT_TRUE(FoundCond);
}

TEST(Figure4, InterpreterThrows) {
  Pipeline PL(makeFigure4());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  InterpResult R = interpret(*PL.P);
  EXPECT_TRUE(R.ThrewException);
  ASSERT_NE(R.FailurePoint, nullptr);
  EXPECT_EQ(R.FailurePoint->loc().Line, PL.W.markerLine("seed"));
}

TEST(Figure5, ThinSliceExplainsTheToughCast) {
  Pipeline PL(makeFigure5());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();

  // The cast is "tough": the points-to analysis cannot verify it.
  const CastInstr *Cast = castAtLine(*PL.P, PL.W.markerLine("cast"));
  ASSERT_NE(Cast, nullptr);
  EXPECT_FALSE(PL.PTA->castCannotFail(Cast));

  // Understanding it: thin slice from the opcode read reaches the tag
  // stores in the constructors.
  SliceResult Thin = sliceBackward(*PL.G, PL.at("opread"), SliceMode::Thin);
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "superstore"));
  EXPECT_TRUE(PL.sliceHasMarker(Thin, "tagstore"));
}

TEST(Figure1, ContextSensitivePipelineRuns) {
  Pipeline PL(makeFigure1());
  ASSERT_TRUE(PL.ok()) << PL.S->diagnostics().str();
  ModRefResult MR(*PL.P, *PL.PTA);
  SDGOptions Opts;
  Opts.ContextSensitive = true;
  std::unique_ptr<SDG> CS = buildSDG(*PL.P, *PL.PTA, &MR, Opts);
  EXPECT_GT(CS->numHeapParamNodes(), 0u);

  TabulationSlicer Thin(*CS, SliceMode::Thin);
  SliceResult S = Thin.slice(PL.at("seed"));
  unsigned BugLine = PL.W.markerLine("bug");
  SourceLine SL = sourceLineAt(*PL.P, BugLine);
  EXPECT_TRUE(S.containsLine(SL.M, BugLine));
}

} // namespace
