//===-- support_test.cpp - Support library unit tests -------------------------==//

#include "support/BitSet.h"
#include "support/Budget.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/ParseInt.h"
#include "support/StringTable.h"
#include "support/Worklist.h"

#include <gtest/gtest.h>

using namespace tsl;

//===----------------------------------------------------------------------===//
// BitSet
//===----------------------------------------------------------------------===//

TEST(BitSet, InsertAndTest) {
  BitSet S;
  EXPECT_FALSE(S.test(5));
  EXPECT_TRUE(S.insert(5));
  EXPECT_FALSE(S.insert(5)); // Second insert reports no change.
  EXPECT_TRUE(S.test(5));
  EXPECT_FALSE(S.test(4));
  EXPECT_EQ(S.count(), 1u);
}

TEST(BitSet, GrowsAcrossWordBoundaries) {
  BitSet S;
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.insert(63));
  EXPECT_TRUE(S.insert(64));
  EXPECT_TRUE(S.insert(1000));
  EXPECT_EQ(S.count(), 4u);
  EXPECT_TRUE(S.test(1000));
  EXPECT_FALSE(S.test(999));
}

TEST(BitSet, UnionSubtractIntersect) {
  BitSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(100);
  B.insert(200);

  BitSet U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_FALSE(U.unionWith(B)); // Idempotent.
  EXPECT_EQ(U.toVector(), (std::vector<unsigned>{1, 100, 200}));

  BitSet D = A;
  D.subtract(B);
  EXPECT_EQ(D.toVector(), (std::vector<unsigned>{1}));

  BitSet I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.toVector(), (std::vector<unsigned>{100}));

  EXPECT_TRUE(A.intersects(B));
  BitSet C;
  C.insert(7);
  EXPECT_FALSE(A.intersects(C));
}

TEST(BitSet, EqualityIgnoresTrailingZeros) {
  BitSet A, B;
  A.insert(3);
  B.reserveIds(1000);
  B.insert(3);
  EXPECT_TRUE(A == B);
  B.insert(999);
  EXPECT_TRUE(A != B);
  B.erase(999);
  EXPECT_TRUE(A == B);
}

TEST(BitSet, ForEachAscending) {
  BitSet S;
  for (unsigned Id : {70u, 3u, 64u, 0u})
    S.insert(Id);
  std::vector<unsigned> Seen;
  S.forEach([&Seen](unsigned Id) { Seen.push_back(Id); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{0, 3, 64, 70}));
}

TEST(BitSet, CountPopcountsAcrossWords) {
  BitSet S;
  EXPECT_EQ(S.count(), 0u);
  for (unsigned Id : {0u, 1u, 63u, 64u, 127u, 128u, 700u})
    S.insert(Id);
  EXPECT_EQ(S.count(), 7u);
  S.erase(64);
  EXPECT_EQ(S.count(), 6u);
}

TEST(BitSet, UnionWithReturningChanged) {
  BitSet A, B, Delta;
  A.insert(1);
  A.insert(100);
  B.insert(100);
  B.insert(200);
  B.insert(65);

  // Only the genuinely new bits land in Delta.
  EXPECT_TRUE(A.unionWithReturningChanged(B, Delta));
  EXPECT_EQ(A.toVector(), (std::vector<unsigned>{1, 65, 100, 200}));
  EXPECT_EQ(Delta.toVector(), (std::vector<unsigned>{65, 200}));

  // Idempotent: a second union adds nothing and leaves Delta alone.
  EXPECT_FALSE(A.unionWithReturningChanged(B, Delta));
  EXPECT_EQ(Delta.toVector(), (std::vector<unsigned>{65, 200}));

  // New bits accumulate into an already-populated Delta.
  BitSet C;
  C.insert(3);
  EXPECT_TRUE(A.unionWithReturningChanged(C, Delta));
  EXPECT_EQ(Delta.toVector(), (std::vector<unsigned>{3, 65, 200}));
}

TEST(BitSet, EmptyAndClear) {
  BitSet S;
  EXPECT_TRUE(S.empty());
  S.insert(42);
  EXPECT_FALSE(S.empty());
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Worklist
//===----------------------------------------------------------------------===//

TEST(Worklist, FifoWithDedup) {
  Worklist WL;
  EXPECT_TRUE(WL.push(1));
  EXPECT_TRUE(WL.push(2));
  EXPECT_FALSE(WL.push(1)); // Already pending.
  EXPECT_EQ(WL.size(), 2u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_TRUE(WL.push(1)); // Re-push after pop is allowed.
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_TRUE(WL.empty());
}

TEST(PriorityWorklist, PopsSmallestPriorityFirst) {
  PriorityWorklist WL;
  WL.setPriority(1, 30);
  WL.setPriority(2, 10);
  WL.setPriority(3, 20);
  EXPECT_TRUE(WL.push(1));
  EXPECT_TRUE(WL.push(2));
  EXPECT_TRUE(WL.push(3));
  EXPECT_FALSE(WL.push(2)); // Already pending.
  EXPECT_EQ(WL.size(), 3u);
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_EQ(WL.pop(), 3u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_TRUE(WL.empty());
}

TEST(PriorityWorklist, DefaultPriorityIsZero) {
  PriorityWorklist WL;
  WL.setPriority(7, 100);
  WL.push(7);
  WL.push(9); // Never prioritized: comes out first.
  EXPECT_EQ(WL.pop(), 9u);
  EXPECT_EQ(WL.pop(), 7u);
}

TEST(PriorityWorklist, ReprioritizingPendingIdReorders) {
  PriorityWorklist WL;
  WL.setPriority(1, 10);
  WL.setPriority(2, 20);
  WL.push(1);
  WL.push(2);
  WL.setPriority(1, 30); // Demote while pending.
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_TRUE(WL.empty());

  // Promote while pending; the stale higher-priority entry must not
  // produce a duplicate pop.
  WL.push(1);
  WL.push(2);
  WL.setPriority(2, 5);
  EXPECT_EQ(WL.pop(), 2u);
  EXPECT_EQ(WL.pop(), 1u);
  EXPECT_TRUE(WL.empty());
}

TEST(PriorityWorklist, RePushAfterPopAllowed) {
  PriorityWorklist WL;
  WL.push(4);
  EXPECT_EQ(WL.pop(), 4u);
  EXPECT_TRUE(WL.push(4));
  EXPECT_EQ(WL.pop(), 4u);
  EXPECT_TRUE(WL.empty());
}

//===----------------------------------------------------------------------===//
// StringTable
//===----------------------------------------------------------------------===//

TEST(StringTable, InternIsStable) {
  StringTable T;
  Symbol A = T.intern("alpha");
  Symbol B = T.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.intern("alpha"), A);
  EXPECT_EQ(T.str(A), "alpha");
  EXPECT_EQ(T.str(B), "beta");
}

TEST(StringTable, LookupWithoutIntern) {
  StringTable T;
  EXPECT_EQ(T.lookup("missing"), 0u);
  Symbol A = T.intern("present");
  EXPECT_EQ(T.lookup("present"), A);
}

TEST(StringTable, ManyStringsNoDangling) {
  // Regression: interned keys must survive storage growth.
  StringTable T;
  std::vector<Symbol> Syms;
  for (int I = 0; I != 1000; ++I)
    Syms.push_back(T.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 1000; ++I) {
    EXPECT_EQ(T.str(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(T.lookup("sym" + std::to_string(I)), Syms[I]);
  }
}

TEST(StringTable, EmptyStringIsSymbolZero) {
  StringTable T;
  EXPECT_EQ(T.intern(""), 0u);
  EXPECT_EQ(T.str(0), "");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsAndRendering) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "suspicious thing");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "broken thing");
  D.note(SourceLoc(3, 5), "because of this");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Text = D.str();
  EXPECT_NE(Text.find("1:2: warning: suspicious thing"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: broken thing"), std::string::npos);
  EXPECT_NE(Text.find("3:5: note: because of this"), std::string::npos);
}

TEST(Diagnostics, InvalidLocRendersUnknown) {
  DiagnosticEngine D;
  D.error(SourceLoc(), "global problem");
  EXPECT_NE(D.str().find("<unknown>"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

namespace {

struct BaseThing {
  enum class Kind { Square, Circle } K;
  explicit BaseThing(Kind K) : K(K) {}
};

struct Square : BaseThing {
  Square() : BaseThing(Kind::Square) {}
  static bool classof(const BaseThing *B) {
    return B->K == BaseThing::Kind::Square;
  }
};

struct Circle : BaseThing {
  Circle() : BaseThing(Kind::Circle) {}
  static bool classof(const BaseThing *B) {
    return B->K == BaseThing::Kind::Circle;
  }
};

} // namespace

TEST(Casting, IsaAndDynCast) {
  Square Sq;
  BaseThing *B = &Sq;
  EXPECT_TRUE(isa<Square>(B));
  EXPECT_FALSE(isa<Circle>(B));
  EXPECT_EQ(dyn_cast<Square>(B), &Sq);
  EXPECT_EQ(dyn_cast<Circle>(B), nullptr);
  EXPECT_EQ(cast<Square>(B), &Sq);
  EXPECT_EQ(dyn_cast_or_null<Square>(static_cast<BaseThing *>(nullptr)),
            nullptr);
}

//===----------------------------------------------------------------------===//
// AnalysisBudget / BudgetGate / FaultInjector
//===----------------------------------------------------------------------===//

TEST(Budget, NullBudgetGateNeverTrips) {
  FaultInjector::instance().reset();
  BudgetGate Gate(nullptr, "slice.pop", 0);
  for (unsigned I = 0; I != 10'000; ++I)
    EXPECT_FALSE(Gate.spend());
  EXPECT_FALSE(Gate.exhausted());
  EXPECT_EQ(Gate.used(), 10'000u);
}

TEST(Budget, StepCapTripsAndIsSticky) {
  FaultInjector::instance().reset();
  AnalysisBudget B;
  BudgetGate Gate(&B, "slice.pop", 10);
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_FALSE(Gate.spend()) << "step " << I;
  EXPECT_TRUE(Gate.spend()); // 11 > 10.
  EXPECT_TRUE(Gate.exhausted());
  EXPECT_EQ(Gate.reason(), "step-cap");
  EXPECT_TRUE(Gate.spend()); // Sticky.
  EXPECT_TRUE(Gate.poll(0)); // Even when the counter would be fine.
}

TEST(Budget, DeadlineExpiresOnlyAfterStart) {
  FaultInjector::instance().reset();
  AnalysisBudget B;
  B.BudgetMs = 1;
  // Not started: the deadline never fires.
  BudgetGate Unstarted(&B, "slice.pop", 0);
  for (unsigned I = 0; I != 500; ++I)
    EXPECT_FALSE(Unstarted.spend());

  B.start();
  auto Busy = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < Busy)
    ;
  BudgetGate Gate(&B, "slice.pop", 0);
  bool Tripped = false;
  // The clock is read every 64 polls; a few hundred polls guarantee a
  // check after the deadline has passed.
  for (unsigned I = 0; I != 500 && !Tripped; ++I)
    Tripped = Gate.spend();
  EXPECT_TRUE(Tripped);
  EXPECT_EQ(Gate.reason(), "deadline");
  EXPECT_TRUE(B.deadlineExpired());
  EXPECT_GT(B.elapsedSeconds(), 0.0);
}

TEST(Budget, FaultFiresAtChosenPoll) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  FI.arm("slice.pop", 3);
  BudgetGate Gate(nullptr, "slice.pop", 0);
  EXPECT_TRUE(FI.reached().count("slice.pop"));
  EXPECT_FALSE(Gate.spend());
  EXPECT_FALSE(Gate.spend());
  EXPECT_TRUE(Gate.spend()); // Third poll.
  EXPECT_EQ(Gate.reason(), "fault:slice.pop");
  EXPECT_TRUE(FI.fired().count("slice.pop"));
  // Unarmed points are unaffected.
  BudgetGate Other(nullptr, "pta.solve", 0);
  EXPECT_FALSE(Other.spend());
  FI.reset();
  EXPECT_FALSE(FI.anyArmed());
}

TEST(Budget, FaultSpecParsing) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  EXPECT_TRUE(FI.armFromSpec("slice.pop,pta.solve:100"));
  EXPECT_TRUE(FI.anyArmed());
  EXPECT_FALSE(FI.armFromSpec("no.such.point"));
  FI.reset();
  EXPECT_TRUE(FI.armFromSpec("all"));
  for (const std::string &P : FaultInjector::knownPoints()) {
    BudgetGate Gate(nullptr, P.c_str(), 0);
    EXPECT_TRUE(Gate.spend()) << P;
  }
  FI.reset();
}

TEST(Budget, PipelineStatusAggregates) {
  PipelineStatus S;
  S.add({"pta", StageStatus::Complete, "", "", 42, 0.1});
  EXPECT_TRUE(S.complete());
  S.add({"sdg", StageStatus::Degraded, "step-cap", "coarse heap hubs", 7,
         0.2});
  EXPECT_FALSE(S.complete());
  ASSERT_NE(S.find("sdg"), nullptr);
  EXPECT_TRUE(S.find("sdg")->degraded());
  EXPECT_EQ(S.find("nope"), nullptr);
  std::string Str = S.str();
  EXPECT_NE(Str.find("pipeline: degraded"), std::string::npos) << Str;
  EXPECT_NE(Str.find("step-cap"), std::string::npos) << Str;
  EXPECT_NE(Str.find("coarse heap hubs"), std::string::npos) << Str;
}

//===----------------------------------------------------------------------===//
// ParseInt
//===----------------------------------------------------------------------===//

TEST(ParseInt, PositiveAcceptsPlainDecimals) {
  uint64_t Out = 0;
  EXPECT_TRUE(parsePositiveInt("1", Out));
  EXPECT_EQ(Out, 1u);
  EXPECT_TRUE(parsePositiveInt("42", Out));
  EXPECT_EQ(Out, 42u);
  EXPECT_TRUE(parsePositiveInt(std::string("007"), Out));
  EXPECT_EQ(Out, 7u);
  EXPECT_TRUE(parsePositiveInt("18446744073709551615", Out));
  EXPECT_EQ(Out, UINT64_MAX);
}

TEST(ParseInt, PositiveRejectsEverythingElse) {
  uint64_t Out = 99;
  for (const char *Bad :
       {"", "0", "-1", "+1", " 1", "1 ", "1x", "x1", "abc", "1.5", "0x10",
        "18446744073709551616", "99999999999999999999999"})
    EXPECT_FALSE(parsePositiveInt(Bad, Out)) << "'" << Bad << "'";
  EXPECT_FALSE(parsePositiveInt(static_cast<const char *>(nullptr), Out));
  // Out is untouched on failure.
  EXPECT_EQ(Out, 99u);
}

TEST(ParseInt, NonZeroAcceptsSignedDecimals) {
  int64_t Out = 0;
  EXPECT_TRUE(parseNonZeroInt("5", Out));
  EXPECT_EQ(Out, 5);
  EXPECT_TRUE(parseNonZeroInt("-5", Out));
  EXPECT_EQ(Out, -5);
  EXPECT_TRUE(parseNonZeroInt(std::string("9223372036854775807"), Out));
  EXPECT_EQ(Out, INT64_MAX);
  EXPECT_TRUE(parseNonZeroInt("-9223372036854775808", Out));
  EXPECT_EQ(Out, INT64_MIN);
}

TEST(ParseInt, NonZeroRejectsZeroJunkAndOverflow) {
  int64_t Out = 7;
  for (const char *Bad :
       {"", "0", "-0", "+5", "-", "--5", "5-", " 5", "5 ", "1e3",
        "9223372036854775808", "-9223372036854775809"})
    EXPECT_FALSE(parseNonZeroInt(Bad, Out)) << "'" << Bad << "'";
  EXPECT_FALSE(parseNonZeroInt(static_cast<const char *>(nullptr), Out));
  EXPECT_EQ(Out, 7);
}
