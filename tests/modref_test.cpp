//===-- modref_test.cpp - Mod-ref analysis unit tests ---------------------------==//

#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<PointsToResult> PTA;
  std::unique_ptr<ModRefResult> MR;

  explicit Fixture(const std::string &Source) {
    DiagnosticEngine Diag;
    P = compileThinJ(Source, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (P) {
      PTA = runPointsTo(*P);
      MR = std::make_unique<ModRefResult>(*P, *PTA);
    }
  }

  Method *fn(const std::string &Name) {
    for (const auto &M : P->methods())
      if (M->qualifiedName(P->strings()) == Name)
        return M.get();
    return nullptr;
  }
};

const char *Source = R"(
class Cell {
  var value: Object;
}
def writeCell(c: Cell, v: Object) {
  c.value = v;
}
def readCell(c: Cell): Object {
  return c.value;
}
def writeViaHelper(c: Cell, v: Object) {
  writeCell(c, v);
}
def pureMath(x: int): int {
  return x * x + 1;
}
def main() {
  var c = new Cell();
  writeViaHelper(c, new Object());
  var r = readCell(c);
  print(pureMath(3));
  print(r == null);
}
)";

} // namespace

TEST(ModRef, DirectEffects) {
  Fixture F(Source);
  Method *Write = F.fn("writeCell");
  Method *Read = F.fn("readCell");
  EXPECT_EQ(F.MR->modOf(Write).count(), 1u);
  EXPECT_TRUE(F.MR->refOf(Write).empty());
  EXPECT_TRUE(F.MR->modOf(Read).empty());
  EXPECT_EQ(F.MR->refOf(Read).count(), 1u);
  // The same partition on both sides.
  EXPECT_TRUE(F.MR->modOf(Write) == F.MR->refOf(Read));
}

TEST(ModRef, TransitiveThroughCallees) {
  Fixture F(Source);
  Method *Helper = F.fn("writeViaHelper");
  Method *Main = F.fn("main");
  EXPECT_EQ(F.MR->modOf(Helper).count(), 1u);
  // main transitively mods the cell and refs it (via readCell).
  EXPECT_GE(F.MR->modOf(Main).count(), 1u);
  EXPECT_GE(F.MR->refOf(Main).count(), 1u);
}

TEST(ModRef, PureFunctionHasNoEffects) {
  Fixture F(Source);
  Method *Pure = F.fn("pureMath");
  EXPECT_TRUE(F.MR->modOf(Pure).empty());
  EXPECT_TRUE(F.MR->refOf(Pure).empty());
}

TEST(ModRef, PartitionsOfAccess) {
  Fixture F(Source);
  // Find the store in writeCell and the load in readCell.
  const Instr *Store = nullptr, *Load = nullptr;
  for (const auto &BB : F.fn("writeCell")->blocks())
    for (const auto &I : BB->instrs())
      if (isa<StoreInstr>(I.get()))
        Store = I.get();
  for (const auto &BB : F.fn("readCell")->blocks())
    for (const auto &I : BB->instrs())
      if (isa<LoadInstr>(I.get()))
        Load = I.get();
  ASSERT_NE(Store, nullptr);
  ASSERT_NE(Load, nullptr);
  BitSet SP = F.MR->partitionsOf(Store);
  BitSet LP = F.MR->partitionsOf(Load);
  EXPECT_EQ(SP.count(), 1u);
  EXPECT_TRUE(SP == LP);
}

TEST(ModRef, DistinctObjectsDistinctPartitions) {
  Fixture F(R"(
class Cell { var value: Object; }
def main() {
  var a = new Cell();
  var b = new Cell();
  a.value = new Object();
  b.value = new Object();
  var r = a.value;
  print(r == null);
}
)");
  // Two (object, field) partitions exist for the two cells.
  EXPECT_GE(F.MR->numPartitions(), 2u);
  Method *Main = F.fn("main");
  EXPECT_EQ(F.MR->modOf(Main).count(), 2u);
  EXPECT_EQ(F.MR->refOf(Main).count(), 1u);
}

TEST(ModRef, ArraysAndStatics) {
  Fixture F(R"(
class G { static var flag: Object; }
def touchArray(a: Object[]) {
  a[0] = G.flag;
}
def main() {
  G.flag = new Object();
  var arr = new Object[2];
  touchArray(arr);
  var r = arr[1];
  print(r == null);
}
)");
  Method *Touch = F.fn("touchArray");
  EXPECT_EQ(F.MR->modOf(Touch).count(), 1u); // The array elements.
  EXPECT_EQ(F.MR->refOf(Touch).count(), 1u); // The static field.
  std::string ModName =
      F.MR->partitionName(F.MR->modOf(Touch).toVector().front(), *F.P);
  EXPECT_NE(ModName.find("[*]"), std::string::npos);
  std::string RefName =
      F.MR->partitionName(F.MR->refOf(Touch).toVector().front(), *F.P);
  EXPECT_EQ(RefName, "G.flag");
}
