//===-- inspection_test.cpp - BFS inspection metric unit tests ------------------==//

#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Inspection.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }

  SourceLine line(unsigned Line) {
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            return {M.get(), Line};
    return {nullptr, Line};
  }
};

const char *Chain = R"(
def main() {
  var a = readInt();
  var b = a + 1;
  var c = b + 1;
  var d = c + 1;
  print(d);
}
)";

} // namespace

TEST(Inspection, CountsUntilDesiredFound) {
  Fixture F(Chain);
  // Seed at print(d), desired at b's definition: the user inspects the
  // seed line, then d, c, b in BFS order -> 4 statements.
  InspectionResult R = simulateInspection(
      *F.G, F.lastAtLine(7), SliceMode::Thin, {F.line(4)});
  EXPECT_TRUE(R.FoundAll);
  EXPECT_EQ(R.InspectedStatements, 4u);
  // The order starts at the seed.
  ASSERT_FALSE(R.Order.empty());
  EXPECT_EQ(R.Order.front().Line, 7u);
}

TEST(Inspection, NearerDesiredCostsLess) {
  Fixture F(Chain);
  InspectionResult Near = simulateInspection(
      *F.G, F.lastAtLine(7), SliceMode::Thin, {F.line(6)});
  InspectionResult Far = simulateInspection(
      *F.G, F.lastAtLine(7), SliceMode::Thin, {F.line(3)});
  EXPECT_LT(Near.InspectedStatements, Far.InspectedStatements);
}

TEST(Inspection, SeedEqualsDesiredIsOne) {
  Fixture F(Chain);
  InspectionResult R = simulateInspection(
      *F.G, F.lastAtLine(7), SliceMode::Thin, {F.line(7)});
  EXPECT_TRUE(R.FoundAll);
  EXPECT_EQ(R.InspectedStatements, 1u);
}

TEST(Inspection, ChargedControlDepsAddToCount) {
  Fixture F(Chain);
  InspectionQuery Q;
  Q.Seed = F.lastAtLine(7);
  Q.Mode = SliceMode::Thin;
  Q.Desired = {F.line(7)};
  Q.ChargedControlDeps = 3;
  InspectionResult R = simulateInspection(*F.G, Q);
  EXPECT_EQ(R.InspectedStatements, 4u); // 1 + 3 charged.
}

TEST(Inspection, UnreachableDesiredReportsNotFound) {
  Fixture F(Chain);
  // Line 3 feeds the chain, but a *forward* target like the print is
  // unreachable from a's def by backward traversal.
  InspectionResult R = simulateInspection(
      *F.G, F.lastAtLine(3), SliceMode::Thin, {F.line(7)});
  EXPECT_FALSE(R.FoundAll);
}

TEST(Inspection, TraditionalExploresMore) {
  Fixture F(R"(
class Box { var v: Object; }
def main() {
  var b1 = new Box();
  var b2 = b1;
  b2.v = new Object();
  var r = b1.v;
  print(r == null);
}
)");
  // Desired: a statement only reachable through base-pointer flow.
  InspectionResult Thin = simulateInspection(
      *F.G, F.lastAtLine(8), SliceMode::Thin, {F.line(5)});
  InspectionResult Trad = simulateInspection(
      *F.G, F.lastAtLine(8), SliceMode::Traditional, {F.line(5)});
  EXPECT_FALSE(Thin.FoundAll);
  EXPECT_TRUE(Trad.FoundAll);
}

TEST(Inspection, PivotsExploredAfterSeedFrontier) {
  Fixture F(R"(
def main() {
  var bound = readInt() * 2;
  var i = 0;
  while (i < bound) {
    print(i);
    i = i + 1;
  }
}
)");
  // From print(i), the bound is control-only. With the loop condition
  // as pivot, the user reaches it after exhausting the seed frontier.
  InspectionQuery Q;
  Q.Seed = F.lastAtLine(6);
  Q.Mode = SliceMode::Thin;
  Q.Desired = {F.line(3)};
  Q.ChargedControlDeps = 1;
  InspectionResult WithoutPivot = simulateInspection(*F.G, Q);
  EXPECT_FALSE(WithoutPivot.FoundAll);

  // The pivot is the while branch.
  const Instr *Branch = nullptr;
  for (const auto &BB : F.P->mainMethod()->blocks())
    if (BB->terminator() && isa<BranchInstr>(BB->terminator()))
      Branch = BB->terminator();
  ASSERT_NE(Branch, nullptr);
  Q.ControlPivots = {Branch};
  InspectionResult WithPivot = simulateInspection(*F.G, Q);
  EXPECT_TRUE(WithPivot.FoundAll);
  // The seed frontier was charged before the pivot chain.
  EXPECT_GT(WithPivot.InspectedStatements, 2u);
}

TEST(Inspection, AliasOneLevelExposesBaseProducers) {
  Fixture F(R"(
class Box { var v: Object; }
def main() {
  var b1 = new Box();
  var b2 = b1;
  b2.v = new Object();
  var r = b1.v;
  print(r == null);
}
)");
  InspectionQuery Q;
  Q.Seed = F.lastAtLine(8);
  Q.Mode = SliceMode::Thin;
  Q.Desired = {F.line(4)}; // The Box allocation: base-pointer material.
  InspectionResult Plain = simulateInspection(*F.G, Q);
  EXPECT_FALSE(Plain.FoundAll);
  Q.ExpandAliasOneLevel = true;
  InspectionResult Expanded = simulateInspection(*F.G, Q);
  EXPECT_TRUE(Expanded.FoundAll);
}

TEST(Inspection, RestrictionPrunesTraversal) {
  Fixture F(Chain);
  // Restricting to nothing but the seed terminates immediately.
  std::unordered_set<const Instr *> OnlySeed = {F.lastAtLine(7)};
  InspectionQuery Q;
  Q.Seed = F.lastAtLine(7);
  Q.Mode = SliceMode::Thin;
  Q.Desired = {F.line(3)};
  Q.RestrictStmts = &OnlySeed;
  InspectionResult R = simulateInspection(*F.G, Q);
  EXPECT_FALSE(R.FoundAll);
  EXPECT_LE(R.InspectedStatements, 2u);
}

TEST(Inspection, DuplicateLinesCostOnce) {
  Fixture F(R"(
def main() {
  var a = readInt(); var b = a + 1; var c = b + a;
  print(c);
}
)");
  // Everything on line 3 counts as one inspected statement.
  InspectionResult R = simulateInspection(
      *F.G, F.lastAtLine(4), SliceMode::Thin, {F.line(3)});
  EXPECT_TRUE(R.FoundAll);
  EXPECT_EQ(R.InspectedStatements, 2u);
}
