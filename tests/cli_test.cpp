//===-- cli_test.cpp - End-to-end tests of the thinslice tool -------------------==//
//
// Drives the installed binary the way a user would: writes a .tsj
// file, runs the tool, checks stdout. Tests run from build/tests (the
// gtest working directory), so the binary lives at ../tools/thinslice.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <algorithm>
#include <iterator>
#include <string>
#include <sys/wait.h>

namespace {

const char *ToolPath = "../tools/thinslice";

bool toolExists() {
  std::ifstream F(ToolPath);
  return F.good();
}

/// Runs a command, captures stdout(+stderr), returns exit status.
int runCapture(const std::string &Cmd, std::string &Out) {
  Out.clear();
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[4096];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    Out.append(Buf, N);
  return pclose(Pipe);
}

class CliTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!toolExists())
      GTEST_SKIP() << "thinslice binary not found at " << ToolPath;
    // One file per test: ctest runs these in parallel processes from
    // one working directory, and some tests rewrite the program.
    Program = std::string("cli_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".tsj";
    std::ofstream F(Program);
    F << R"THINJ(
def readNames(count: int): Vector {
  var firstNames = new Vector();
  for (var i = 0; i < count; i = i + 1) {
    var fullName = readLine();
    var spaceInd = fullName.indexOf(" ");
    var firstName = fullName.substring(0, spaceInd - 1);
    firstNames.add(firstName);
  }
  return firstNames;
}
def main() {
  var names = readNames(readInt());
  for (var i = 0; i < names.size(); i = i + 1) {
    print("FIRST NAME: " + (string) names.get(i));
  }
}
)THINJ";
  }

  void TearDown() override { remove(Program.c_str()); }

  std::string run(const std::string &Args, int *Status = nullptr) {
    std::string Out;
    int S = runCapture(std::string(ToolPath) + " " + Program + " " + Args,
                       Out);
    if (Status)
      *Status = S;
    return Out;
  }

  std::string Program;
};

} // namespace

TEST_F(CliTest, RunExecutesTheProgram) {
  std::string Out = run("--run --int 1 --in \"John Doe\"");
  EXPECT_NE(Out.find("FIRST NAME: Joh"), std::string::npos) << Out;
}

TEST_F(CliTest, ThinSliceFindsTheBugLine) {
  std::string Out = run("--line 15");
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
  // The buggy substring (user line 7) is in the slice; runtime lines
  // are tagged.
  EXPECT_NE(Out.find("readNames:7"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[runtime]"), std::string::npos) << Out;
}

TEST_F(CliTest, TraditionalIsLarger) {
  std::string Thin = run("--line 15");
  std::string Trad = run("--line 15 --mode trad");
  auto Lines = [](const std::string &S) {
    return std::count(S.begin(), S.end(), '\n');
  };
  EXPECT_GT(Lines(Trad), Lines(Thin));
}

TEST_F(CliTest, WhyNarratesProvenance) {
  std::string Out = run("--line 15 --why");
  EXPECT_NE(Out.find("[seed]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("produces the value used by"), std::string::npos)
      << Out;
}

TEST_F(CliTest, StatsAndDumpIr) {
  std::string Out = run("--stats --line 15");
  EXPECT_NE(Out.find("sdg: "), std::string::npos) << Out;
  std::string Ir = run("--dump-ir");
  EXPECT_NE(Ir.find("param#"), std::string::npos) << Ir;
}

TEST_F(CliTest, DotExport) {
  std::string Out = run("--line 15 --dot cli_test_slice.dot");
  EXPECT_NE(Out.find("wrote cli_test_slice.dot"), std::string::npos) << Out;
  std::ifstream Dot("cli_test_slice.dot");
  ASSERT_TRUE(Dot.good());
  std::string First;
  std::getline(Dot, First);
  EXPECT_NE(First.find("digraph"), std::string::npos);
  remove("cli_test_slice.dot");
}

TEST_F(CliTest, ErrorsReportUserFileLines) {
  std::ofstream F(Program);
  F << "def main() { print(nope); }\n";
  F.close();
  int Status = 0;
  std::string Out = run("--line 1", &Status);
  EXPECT_NE(Status, 0);
  // Position is relative to the user's file (line 1), not the
  // prepended runtime.
  EXPECT_NE(Out.find(":1:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("unknown variable"), std::string::npos) << Out;
}

TEST_F(CliTest, BadUsageExitsNonZero) {
  std::string Out;
  int Status = runCapture(std::string(ToolPath), Out);
  EXPECT_NE(Status, 0);
  EXPECT_NE(Out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, ContextSensitiveMode) {
  std::string Out = run("--line 15 --context-sensitive");
  EXPECT_NE(Out.find("context-sensitive slice"), std::string::npos) << Out;
  EXPECT_NE(Out.find("readNames:7"), std::string::npos) << Out;
}

TEST_F(CliTest, ChopMode) {
  std::string Out = run("--line 5 --chop 15");
  EXPECT_NE(Out.find("chop from line 5"), std::string::npos) << Out;
  EXPECT_NE(Out.find("main:15"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Strict numeric parsing (previously atoi silently turned typos into 0)
//===----------------------------------------------------------------------===//

namespace {
int exitCode(int PcloseStatus) {
  return WIFEXITED(PcloseStatus) ? WEXITSTATUS(PcloseStatus) : -1;
}
} // namespace

TEST_F(CliTest, NonNumericLineIsUsageError) {
  int Status = 0;
  std::string Out = run("--line abc", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
  EXPECT_NE(Out.find("--line expects a positive integer"), std::string::npos)
      << Out;
}

TEST_F(CliTest, ZeroAndTrailingGarbageRejected) {
  int Status = 0;
  run("--line 0", &Status);
  EXPECT_EQ(exitCode(Status), 2);
  run("--line 15x", &Status);
  EXPECT_EQ(exitCode(Status), 2);
  run("--chop 0", &Status);
  EXPECT_EQ(exitCode(Status), 2);
  run("--line 15 --alias-depth zz", &Status);
  EXPECT_EQ(exitCode(Status), 2);
  std::string Out = run("--run --int 1x", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
  EXPECT_NE(Out.find("--int expects a nonzero integer"), std::string::npos)
      << Out;
}

TEST_F(CliTest, NegativeIntInputAccepted) {
  int Status = 0;
  run("--run --int -1", &Status);
  EXPECT_EQ(exitCode(Status), 0);
}

//===----------------------------------------------------------------------===//
// I/O failure reporting and seed-line suggestions
//===----------------------------------------------------------------------===//

TEST_F(CliTest, DotWriteFailureIsReported) {
  int Status = 0;
  std::string Out =
      run("--line 15 --dot /nonexistent-dir/slice.dot", &Status);
  EXPECT_EQ(exitCode(Status), 1) << Out;
  EXPECT_NE(Out.find("cannot write"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("wrote "), std::string::npos) << Out;
}

TEST_F(CliTest, NoStatementErrorSuggestsNearestLines) {
  // Line 1 of the fixture file is blank; 2 and 3 carry statements.
  int Status = 0;
  std::string Out = run("--line 1", &Status);
  EXPECT_EQ(exitCode(Status), 1) << Out;
  EXPECT_NE(Out.find("no statement at line 1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("nearest statement lines:"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Budgets, faults, and degradation exit codes
//===----------------------------------------------------------------------===//

TEST_F(CliTest, GenerousBudgetCompletes) {
  int Status = 0;
  std::string Out = run("--line 15 --budget-ms 60000", &Status);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("pipeline: complete"), std::string::npos) << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

TEST_F(CliTest, InjectedSliceFaultDegradesWithExitThree) {
  int Status = 0;
  std::string Out = run("--line 15 --fault slice.pop", &Status);
  EXPECT_EQ(exitCode(Status), 3) << Out;
  EXPECT_NE(Out.find("pipeline: degraded"), std::string::npos) << Out;
  EXPECT_NE(Out.find("fault:slice.pop"), std::string::npos) << Out;
}

TEST_F(CliTest, StrictBudgetRefusesDegradedResult) {
  int Status = 0;
  std::string Out = run("--line 15 --fault slice.pop --strict-budget",
                        &Status);
  EXPECT_EQ(exitCode(Status), 4) << Out;
  EXPECT_NE(Out.find("refusing degraded result"), std::string::npos) << Out;
}

TEST_F(CliTest, UnknownFaultPointIsUsageError) {
  int Status = 0;
  std::string Out = run("--line 15 --fault no.such.point", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
  EXPECT_NE(Out.find("known points:"), std::string::npos) << Out;
}

TEST_F(CliTest, RunStepsTerminatesInfiniteLoop) {
  std::ofstream F(Program);
  F << "def main() {\n"
       "  var i = 0;\n"
       "  while (i < 10) { print(i); i = i - i; }\n"
       "}\n";
  F.close();
  int Status = 0;
  std::string Out = run("--run --run-steps 500", &Status);
  EXPECT_EQ(exitCode(Status), 3) << Out;
  EXPECT_NE(Out.find("step limit exceeded"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Interactive mode: one warm session answering repeated queries
//===----------------------------------------------------------------------===//

namespace {

/// Pipes \p Input into `thinslice <program> <args>` on stdin.
int runInteractive(const std::string &Program, const std::string &Input,
                   const std::string &Args, std::string &Out) {
  return runCapture("printf '" + Input + "' | " + ToolPath + " " + Program +
                        " " + Args,
                    Out);
}

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST_F(CliTest, InteractiveRepeatQueryIsAFullCacheHit) {
  std::string Out;
  int Status = runInteractive(
      Program, "slice 15\\nslice 15\\nstats\\nquit\\n", "--interactive", Out);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  // Both queries answered, identically formatted to the one-shot path.
  EXPECT_EQ(countOccurrences(Out, "thin slice from line 15"), 2u) << Out;
  EXPECT_NE(Out.find("readNames:7"), std::string::npos) << Out;
  // The second query never recomputed anything: every analysis stage
  // ran once, and the repeated slice was served from the memo.
  EXPECT_NE(Out.find("session stages (memoization):"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("slice: hits=1 misses=1"), std::string::npos) << Out;
  for (const char *Stage : {"compile:", "pta:", "sdg:", "engine:"}) {
    size_t Pos = Out.find(Stage);
    ASSERT_NE(Pos, std::string::npos) << Stage << "\n" << Out;
    EXPECT_NE(Out.find("misses=1", Pos), std::string::npos) << Stage;
  }
}

TEST_F(CliTest, InteractiveModeAndContextSwitches) {
  std::string Out;
  runInteractive(Program,
                 "mode trad\\nslice 15\\ncs on\\nslice 15\\ncs off\\n"
                 "mode thin\\nslice 15\\n",
                 "--interactive", Out);
  EXPECT_NE(Out.find("traditional slice from line 15"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("context-sensitive slice from line 15"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

TEST_F(CliTest, InteractiveErrorsKeepTheLoopAlive) {
  std::string Out;
  int Status = runInteractive(
      Program, "slice x\\nbogus\\nmode nope\\nslice 15\\n", "--interactive",
      Out);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("error: slice expects a positive line number, got 'x'"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("error: unknown command 'bogus'"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("error: mode expects thin|trad"), std::string::npos)
      << Out;
  // The loop survived all three errors and still answered the query.
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

TEST_F(CliTest, InteractiveStatsFlagPrintsTelemetryAtExit) {
  std::string Out;
  runInteractive(Program, "slice 15\\n", "--interactive --stats", Out);
  // No explicit stats command: the --stats flag reports the session
  // block once the input ends.
  EXPECT_NE(Out.find("session stages (memoization):"), std::string::npos)
      << Out;
}

//===----------------------------------------------------------------------===//
// Incremental sessions: --incremental, edit, reload
//===----------------------------------------------------------------------===//

TEST_F(CliTest, IncrementalFlagStrictlyParsed) {
  int Status = 0;
  std::string Out = run("--line 15 --incremental bogus", &Status);
  EXPECT_NE(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("error: --incremental expects on|off, got 'bogus'"),
            std::string::npos)
      << Out;
  Out = run("--line 15 --incremental", &Status);
  EXPECT_NE(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("--incremental expects on|off"), std::string::npos)
      << Out;
  Out = run("--line 15 --incremental off", &Status);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

TEST_F(CliTest, InteractiveIncrementalReloadIsAppliedInPlace) {
  // A no-edit reload through the incremental path: zero dirty bodies,
  // every function reused, analyses re-keyed verbatim.
  std::string Out;
  int Status = runInteractive(Program, "slice 15\\nreload\\nslice 15\\nstats\\n",
                              "--interactive --incremental on", Out);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_EQ(countOccurrences(Out, "thin slice from line 15"), 2u) << Out;
  EXPECT_NE(Out.find("incremental: attempts=1 applied=1"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("fn_recompiled=0"), std::string::npos) << Out;
}

TEST_F(CliTest, InteractiveIncrementalEditMatchesOneShotAnswer) {
  // `edit FILE2` where FILE2 differs from the running program by one
  // function body: the session recompiles only that body, updates the
  // analyses in place, and the post-edit slice is byte-identical to a
  // one-shot run on FILE2.
  const std::string Program2 = Program + ".edited.tsj";
  {
    std::ifstream In(Program);
    std::string Src((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
    // Edit main's loop header: a body whose retracted allocation
    // sites define no contexts, so the update must stay on the fast
    // path (editing readNames would retract the Vector receiver and
    // soundly decline to a cold rebuild instead).
    const std::string Old = "i < names.size(); i = i + 1";
    const size_t At = Src.find(Old);
    ASSERT_NE(At, std::string::npos);
    Src.replace(At, Old.size(), "i < names.size(); i = i + 2 - 1");
    std::ofstream OutF(Program2);
    OutF << Src;
  }
  std::string OneShot;
  runCapture(std::string(ToolPath) + " " + Program2 + " --line 15", OneShot);
  const size_t HeadAt = OneShot.find("thin slice from line 15");
  ASSERT_NE(HeadAt, std::string::npos) << OneShot;
  const std::string Head =
      OneShot.substr(HeadAt, OneShot.find('\n', HeadAt) - HeadAt);

  std::string Out;
  int Status = runInteractive(
      Program, "slice 15\\nedit " + Program2 + "\\nslice 15\\nstats\\n",
      "--interactive --incremental on", Out);
  remove(Program2.c_str());
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_EQ(countOccurrences(Out, "thin slice from line 15"), 2u) << Out;
  // The post-edit answer is the one-shot answer for the edited file.
  EXPECT_NE(Out.find(Head), std::string::npos) << Head << "\n" << Out;
  // And it was produced by the fast path: one body recompiled,
  // everything else reused, all three analyses updated in place.
  EXPECT_NE(Out.find("incremental: attempts=1 applied=1"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("fn_recompiled=1 pta_updates=1"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("sdg_patches=1 cold_fallbacks=0 stage_fallbacks=0"),
            std::string::npos)
      << Out;
}

TEST_F(CliTest, InteractiveEditErrorsKeepTheLoopAlive) {
  std::string Out;
  int Status = runInteractive(
      Program, "edit\\nedit no_such_file.tsj\\nslice 15\\n",
      "--interactive --incremental on", Out);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("error: edit expects a file path"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("error: cannot open no_such_file.tsj"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Failure isolation: stage crashes, bounded retry, and exit code 5
//===----------------------------------------------------------------------===//

TEST_F(CliTest, PersistentStageCrashExitsFive) {
  // A fault that throws on every attempt exhausts the bounded retry;
  // the tool reports WHICH stage failed and exits 5 — distinct from a
  // compile error (1) and from sound degradation (3/4).
  int Status = 0;
  std::string Out = run("--line 15 --fault pta.solve:1:throw", &Status);
  EXPECT_EQ(exitCode(Status), 5) << Out;
  EXPECT_NE(Out.find("points-to stage failed"), std::string::npos) << Out;
  EXPECT_NE(Out.find("pta.solve"), std::string::npos) << Out;
}

TEST_F(CliTest, TransientStageCrashIsRetriedInvisibly) {
  // :once disarms after the first fire; the retry reruns the stage
  // clean, so the user sees a normal complete run.
  int Status = 0;
  std::string Out = run("--line 15 --fault pta.solve:1:throw:once", &Status);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

TEST_F(CliTest, InteractiveSurvivesFailingQueries) {
  // Both queries fail while the fault stays armed, but neither kills
  // the REPL: each reports the failure, the loop keeps reading, and
  // quitting is a clean exit.
  std::string Out;
  int Status = runInteractive(Program, "slice 15\\nslice 15\\nquit\\n",
                              "--interactive --fault pta.solve:1:throw", Out);
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_EQ(countOccurrences(Out, "session remains usable"), 2u) << Out;
  EXPECT_EQ(Out.find("thin slice from line 15"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Persistent snapshots: --save-snapshot / --load-snapshot / --cache-dir
//===----------------------------------------------------------------------===//

TEST_F(CliTest, SnapshotFlagsRequireAnArgument) {
  int Status = 0;
  std::string Out = run("--save-snapshot", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
  EXPECT_NE(Out.find("usage:"), std::string::npos) << Out;
  Out = run("--load-snapshot", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
  Out = run("--cache-dir", &Status);
  EXPECT_EQ(exitCode(Status), 2) << Out;
}

TEST_F(CliTest, SaveToUnwritablePathExitsFive) {
  int Status = 0;
  std::string Out =
      run("--save-snapshot /nonexistent-dir/s.tslsnap", &Status);
  EXPECT_EQ(exitCode(Status), 5) << Out;
  EXPECT_NE(Out.find("cannot write"), std::string::npos) << Out;
}

TEST_F(CliTest, WarmStartSliceIsIdenticalToCold) {
  const std::string Snap = Program + ".tslsnap";
  int Status = 0;
  std::string Cold = run("--line 15 --save-snapshot " + Snap, &Status);
  EXPECT_EQ(exitCode(Status), 0) << Cold;
  std::string Warm = run("--line 15 --load-snapshot " + Snap, &Status);
  EXPECT_EQ(exitCode(Status), 0) << Warm;
  remove(Snap.c_str());
  // The warm-started query prints byte-identical slice output.
  EXPECT_EQ(Cold, Warm);
  EXPECT_NE(Warm.find("thin slice from line 15"), std::string::npos) << Warm;
}

TEST_F(CliTest, LoadFromMissingSnapshotFallsBackCold) {
  int Status = 0;
  std::string Out =
      run("--line 15 --load-snapshot no_such_snapshot.tslsnap --stats",
          &Status);
  // The fallback is a warning, not a failure: the query still runs
  // cold and the telemetry records the declined load.
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("snapshot: cannot read"), std::string::npos) << Out;
  EXPECT_NE(Out.find("thin slice from line 15"), std::string::npos) << Out;
  EXPECT_NE(Out.find("fallbacks=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("last_fallback:"), std::string::npos) << Out;
}

TEST_F(CliTest, CacheDirMissThenHit) {
  const std::string Dir = Program + ".cache";
  int Status = 0;
  std::string First = run("--line 15 --cache-dir " + Dir + " --stats",
                          &Status);
  EXPECT_EQ(exitCode(Status), 0) << First;
  EXPECT_NE(First.find("cache_misses=1"), std::string::npos) << First;
  EXPECT_NE(First.find("saves=1"), std::string::npos) << First;
  std::string Second = run("--line 15 --cache-dir " + Dir + " --stats",
                           &Status);
  EXPECT_EQ(exitCode(Status), 0) << Second;
  EXPECT_NE(Second.find("cache_hits=1"), std::string::npos) << Second;
  EXPECT_NE(Second.find("loads=1"), std::string::npos) << Second;
  // Identical answers either way.
  const size_t ColdAt = First.find("thin slice from line 15");
  const size_t WarmAt = Second.find("thin slice from line 15");
  ASSERT_NE(ColdAt, std::string::npos) << First;
  ASSERT_NE(WarmAt, std::string::npos) << Second;
  EXPECT_EQ(First.substr(ColdAt, First.find("session stages", ColdAt) - ColdAt),
            Second.substr(WarmAt, Second.find("session stages", WarmAt) -
                                      WarmAt));
  runCapture("rm -rf " + Dir, First);
}

TEST_F(CliTest, InteractiveSaveAndLoadCommands) {
  const std::string Snap = Program + ".repl.tslsnap";
  std::string Out;
  int Status = runInteractive(Program,
                              "slice 15\\nsave " + Snap + "\\nload " + Snap +
                                  "\\nslice 15\\nsave\\nload bogus.tslsnap\\n",
                              "--interactive", Out);
  remove(Snap.c_str());
  EXPECT_EQ(exitCode(Status), 0) << Out;
  EXPECT_NE(Out.find("saved snapshot " + Snap), std::string::npos) << Out;
  EXPECT_NE(Out.find("loaded snapshot " + Snap), std::string::npos) << Out;
  EXPECT_EQ(countOccurrences(Out, "thin slice from line 15"), 2u) << Out;
  EXPECT_NE(Out.find("error: save expects a file path"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("snapshot: cannot read bogus.tslsnap"),
            std::string::npos)
      << Out;
}

TEST_F(CliTest, AllCompileErrorsAreReportedWithPositions) {
  // The recovering parser surfaces every mistake in one run, each at
  // its user-file position — not just the first.
  std::ofstream F(Program);
  F << "def main() {\n"
       "  var a = 1\n"
       "  var b = 2\n"
       "  var c = ;\n"
       "  a = = 5;\n"
       "  print(\"x\")\n"
       "  print(\"y\");\n"
       "}\n";
  F.close();
  int Status = 0;
  std::string Out = run("--line 7", &Status);
  EXPECT_EQ(exitCode(Status), 1) << Out;
  EXPECT_EQ(countOccurrences(Out, ": error: "), 5u) << Out;
  for (const char *Pos : {":2:", ":3:", ":4:", ":5:", ":6:"})
    EXPECT_NE(Out.find(Pos), std::string::npos) << Pos << "\n" << Out;
}
