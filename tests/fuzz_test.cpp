//===-- fuzz_test.cpp - Deterministic seeded source fuzzing ---------------------==//
//
// A seeded random-source generator drives the FULL pipeline (compile
// -> points-to -> SDG -> slice) on 200 generated programs: mostly
// well-formed ThinJ drawn from a small grammar, a fraction mutated
// (truncated or byte-spliced) to stress the recovering parser. The
// contract under test is the fail-safe one, not correctness of any
// particular slice:
//
//   - no input crashes any stage;
//   - a failing compile produces at least one located diagnostic and
//     a structured Status from the checked boundary;
//   - a successful compile flows through every downstream stage
//     without an exception escaping a boundary.
//
// Every program is a pure function of its seed, so a failure
// reproduces from the seed alone. The suite carries the "chaos" ctest
// label and runs in the sanitizer trees.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace tsl;

namespace {

/// splitmix64: deterministic across platforms (no libc rand).
struct Rng {
  uint64_t State;
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
  uint64_t operator()(uint64_t N) { return next() % N; }
};

/// A random expression over the in-scope int variables in \p Scope.
std::string genExpr(Rng &R, const std::vector<unsigned> &Scope,
                    unsigned Depth) {
  if (Depth == 0 || R(3) == 0) {
    if (!Scope.empty() && R(2))
      return "v" + std::to_string(Scope[R(Scope.size())]);
    return std::to_string(R(100));
  }
  const char *Ops[] = {" + ", " - ", " * "};
  return "(" + genExpr(R, Scope, Depth - 1) + Ops[R(3)] +
         genExpr(R, Scope, Depth - 1) + ")";
}

/// A random statement list. \p Scope is the list of variable names
/// visible here (nested blocks get a copy, so names declared inside a
/// block are never referenced after it closes); \p NextName is the
/// program-wide name counter (shared, so no name is declared twice).
std::string genStmts(Rng &R, std::vector<unsigned> &Scope, unsigned &NextName,
                     unsigned Budget, unsigned Indent) {
  std::string Pad(Indent, ' ');
  std::string Out;
  for (unsigned I = 0; I != Budget; ++I) {
    switch (R(6)) {
    case 0:
    case 1:
      Out += Pad + "var v" + std::to_string(NextName) + " = " +
             genExpr(R, Scope, 2) + ";\n";
      Scope.push_back(NextName++);
      break;
    case 2:
      if (!Scope.empty()) {
        Out += Pad + "v" + std::to_string(Scope[R(Scope.size())]) + " = " +
               genExpr(R, Scope, 2) + ";\n";
        break;
      }
      [[fallthrough]];
    case 3:
      Out += Pad + "print(\"s" + std::to_string(R(10)) + "\");\n";
      break;
    case 4:
      if (!Scope.empty()) {
        Out += Pad + "if (v" + std::to_string(Scope[R(Scope.size())]) +
               " < " + std::to_string(R(50)) + ") {\n";
        std::vector<unsigned> Inner = Scope;
        Out += genStmts(R, Inner, NextName, 1 + R(2), Indent + 2);
        Out += Pad + "}\n";
        break;
      }
      [[fallthrough]];
    default: {
      unsigned Loop = NextName++;
      Out += Pad + "var v" + std::to_string(Loop) + " = 0;\n";
      Scope.push_back(Loop);
      Out += Pad + "while (v" + std::to_string(Loop) + " < " +
             std::to_string(1 + R(4)) + ") {\n";
      std::vector<unsigned> Inner = Scope;
      Out += genStmts(R, Inner, NextName, 1 + R(2), Indent + 2);
      Out += Pad + "  v" + std::to_string(Loop) + " = v" +
             std::to_string(Loop) + " + 1;\n";
      Out += Pad + "}\n";
      break;
    }
    }
  }
  return Out;
}

/// One whole program: a class with an int field, a helper that stores
/// through it, and a main built from the random statement grammar.
std::string genProgram(Rng &R) {
  std::string Out;
  Out += "class Box { var f: int; }\n";
  Out += "def poke(b: Box, x: int) {\n  b.f = x;\n}\n";
  Out += "def main() {\n";
  Out += "  var b = new Box();\n";
  std::vector<unsigned> Scope;
  unsigned NextName = 0;
  Out += genStmts(R, Scope, NextName, 3 + R(5), 2);
  if (!Scope.empty())
    Out += "  poke(b, v" + std::to_string(Scope[R(Scope.size())]) + ");\n";
  Out += "  print(\"end\");\n";
  Out += "}\n";

  // A fraction of the corpus is mutated to exercise the recovering
  // parser: truncation or a spliced-in junk byte.
  switch (R(5)) {
  case 0:
    Out = Out.substr(0, R(Out.size()) + 1);
    break;
  case 1: {
    std::size_t Pos = R(Out.size());
    Out[Pos] = static_cast<char>(32 + R(95));
    break;
  }
  default:
    break;
  }
  return Out;
}

} // namespace

TEST(Fuzz, SeededSourcesDriveTheFullPipelineWithoutCrashing) {
  FaultInjector::instance().reset();
  unsigned Compiled = 0, Rejected = 0;
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    Rng R{Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull};
    const std::string Src = genProgram(R);
    SCOPED_TRACE("seed " + std::to_string(Seed));

    AnalysisSession S(Src);
    Expected<Program *> P = S.programChecked();
    if (!P.ok()) {
      // A rejected input must explain itself: a structured Status and
      // at least one diagnostic.
      EXPECT_FALSE(S.lastError().isOk());
      EXPECT_TRUE(S.diagnostics().hasErrors());
      ++Rejected;
      continue;
    }
    ++Compiled;

    // Drive every downstream stage; no input may crash any of them.
    Expected<SDG *> G = S.sdgChecked();
    ASSERT_TRUE(G.ok()) << G.status().str();
    const Instr *Seed2 = nullptr;
    for (const auto &M : (*P)->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line)
            Seed2 = I.get();
    if (!Seed2)
      continue;
    Expected<const SliceResult *> Slice =
        S.sliceBackwardChecked(Seed2, SliceMode::Thin);
    ASSERT_TRUE(Slice.ok()) << Slice.status().str();
    EXPECT_TRUE((*Slice)->complete());
  }
  // The generator must produce both healthy and broken inputs, or the
  // smoke test is vacuous.
  EXPECT_GT(Compiled, 50u);
  EXPECT_GT(Rejected, 10u);
}

TEST(Fuzz, RejectedSourcesCarryLocatedDiagnostics) {
  FaultInjector::instance().reset();
  unsigned Located = 0, Rejected = 0;
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    Rng R{Seed * 0x2545F4914F6CDD1Dull + 1};
    const std::string Src = genProgram(R);
    DiagnosticEngine Diag;
    std::unique_ptr<Program> P = compileThinJ(Src, Diag);
    if (P)
      continue;
    ++Rejected;
    EXPECT_TRUE(Diag.hasErrors()) << "seed " << Seed;
    for (const Diagnostic &D : Diag.diagnostics())
      if (D.Loc.Line)
        ++Located;
  }
  if (Rejected)
    EXPECT_GT(Located, 0u);
}
