//===-- incremental_test.cpp - Incremental-vs-cold differential suite -----------==//
//
// The contract of the function-granular incremental reanalysis layer
// (DESIGN.md section 13): after any setSource() edit, a session with
// incremental mode on answers every query byte-identically to a cold
// session compiled from the edited source. Each edit script below
// warms a session, applies its edit, and compares canonical artifact
// signatures and rendered slices against the cold rebuild — at
// threads 1 and 4, since the update path must compose with the
// parallel stages.
//
// Eligible edits (body-only changes, including bodies inside a
// call-graph SCC) must take the fast path and reuse every untouched
// function; ineligible edits (added/removed functions, signature
// changes) and budgeted sessions must fall back cold — soundness
// first, the fast path is purely a performance optimization.
//
// The suite carries the "incremental" ctest label: the
// TSL_SANITIZE=address and TSL_SANITIZE=thread trees run it alongside
// engine/pipeline/parallel/chaos, so retract-and-replay and SDG
// patching are also leak- and race-checked.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace tsl;

namespace {

/// Shared warm source: a heap helper, a two-function recursion (one
/// call-graph SCC), a spare leaf, and a main driving them all.
const char *BaseSource = R"(
class Cell {
  var v: int;
}
def put(c: Cell, x: int) {
  c.v = x;
}
def even(n: int): int {
  if (n < 1) { return 1; }
  return odd(n - 1);
}
def odd(n: int): int {
  if (n < 1) { return 0; }
  return even(n - 1);
}
def spare(n: int): int {
  return n * 2;
}
def main() {
  var a = new Cell();
  put(a, readInt());
  var k = even(readInt());
  print(a.v);
  print(k);
  print(spare(3));
}
)";

std::string replaced(std::string Src, const std::string &Old,
                     const std::string &New) {
  const std::size_t At = Src.find(Old);
  EXPECT_NE(At, std::string::npos) << Old;
  if (At != std::string::npos)
    Src.replace(At, Old.size(), New);
  return Src;
}

struct EditScript {
  const char *Name;
  std::string Edited;
  bool ExpectApplied; ///< Fast path must apply (vs must fall back cold).
  bool Budgeted = false;
};

std::vector<EditScript> editScripts() {
  std::vector<EditScript> S;
  // 1. Body edit: rewrite a heap store through a fresh alias.
  S.push_back({"body-edit",
               replaced(BaseSource, "  c.v = x;",
                        "  var d = c;\n  d.v = x + 1 - 1;"),
               /*ExpectApplied=*/true});
  // 2. Added function: skeleton change, must rebuild cold.
  S.push_back({"add-function",
               replaced(replaced(BaseSource, "def main",
                                 "def extra(n: int): int {\n"
                                 "  return n + 7;\n"
                                 "}\n"
                                 "def main"),
                        "  print(spare(3));",
                        "  print(spare(3));\n  print(extra(1));"),
               /*ExpectApplied=*/false});
  // 3. Deleted function: skeleton change, must rebuild cold.
  S.push_back({"delete-function",
               replaced(replaced(BaseSource,
                                 "def spare(n: int): int {\n"
                                 "  return n * 2;\n"
                                 "}\n",
                                 ""),
                        "  print(spare(3));\n", ""),
               /*ExpectApplied=*/false});
  // 4. Signature change: arity change plus matching call sites.
  S.push_back({"signature-change",
               replaced(replaced(BaseSource, "def spare(n: int): int {\n"
                                             "  return n * 2;",
                                 "def spare(n: int, m: int): int {\n"
                                 "  return n * 2 + m;"),
                        "print(spare(3));", "print(spare(3, 4));"),
               /*ExpectApplied=*/false});
  // 5. Edit inside a collapsed call-graph SCC: odd <-> even recurse
  // into each other, so the dirty body sits in a points-to cycle.
  S.push_back({"scc-edit",
               replaced(BaseSource, "  return even(n - 1);",
                        "  var t = even(n - 1);\n  return t + 0;"),
               /*ExpectApplied=*/true});
  // 6. Same body edit under a budget: cached artifacts embed budget
  // outcomes, so the session must decline and rebuild cold.
  S.push_back({"budgeted-edit",
               replaced(BaseSource, "  c.v = x;",
                        "  var d = c;\n  d.v = x + 1 - 1;"),
               /*ExpectApplied=*/false, /*Budgeted=*/true});
  return S;
}

/// Canonical name of an abstract object: its allocation site position
/// and context depth. Object *ids* are permuted between an
/// incremental update and a cold run; site positions are not.
std::string objName(const PointsToResult &PTA, unsigned Obj) {
  const AbstractObject &O = PTA.objects()[Obj];
  std::ostringstream OS;
  OS << "L" << (O.Site ? O.Site->loc().Line : 0) << "C"
     << (O.Site ? O.Site->loc().Col : 0) << "D" << O.CtxDepth;
  return OS.str();
}

/// Points-to signature over canonical object names, in program order.
std::string ptaSignature(const Program &P, const PointsToResult &PTA) {
  std::ostringstream OS;
  OS << "cgnodes=" << PTA.callGraph().nodes().size()
     << ";cgedges=" << PTA.callGraph().edges().size() << "\n";
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        if (!I->dest())
          continue;
        std::vector<std::string> Pts;
        PTA.pointsTo(I->dest()).forEach(
            [&](unsigned Obj) { Pts.push_back(objName(PTA, Obj)); });
        std::sort(Pts.begin(), Pts.end());
        OS << M->qualifiedName(P.strings()) << ":" << I->loc().Line << ":"
           << I->loc().Col << " =";
        for (const std::string &N : Pts)
          OS << " " << N;
        OS << "\n";
      }
  return OS.str();
}

/// Mod-ref signature over partition *content* (partition ids interned
/// by an incremental update are permuted relative to a cold run).
std::string modrefSignature(const Program &P, const ModRefResult &MR) {
  std::ostringstream OS;
  auto Render = [&](const BitSet &Set) {
    std::vector<std::string> Names;
    Set.forEach([&](unsigned Id) { Names.push_back(MR.partitionName(Id, P)); });
    std::sort(Names.begin(), Names.end());
    for (const std::string &N : Names)
      OS << " " << N;
  };
  for (const auto &M : P.methods()) {
    OS << M->qualifiedName(P.strings()) << " mod:";
    Render(MR.modOf(M.get()));
    OS << " ref:";
    Render(MR.refOf(M.get()));
    OS << "\n";
  }
  return OS.str();
}

std::vector<const Instr *> printSeeds(const Program &P) {
  std::vector<const Instr *> Seeds;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seeds.push_back(I.get());
  return Seeds;
}

std::string renderSlice(const SliceResult &R, const Program &P) {
  std::string Out = std::to_string(R.sizeStmts()) + "|";
  for (const SourceLine &L : R.sourceLines()) {
    Out += L.M->qualifiedName(P.strings());
    Out += ':';
    Out += std::to_string(L.Line);
    Out += ';';
  }
  return Out;
}

/// The full observable surface of one session, canonically rendered:
/// points-to and mod-ref signatures, thin and traditional slices from
/// every print statement, and one context-sensitive thin slice (the
/// CS graph always rebuilds, but from the incrementally-updated
/// points-to and mod-ref artifacts).
std::string sessionSignature(AnalysisSession &S) {
  Program *P = S.program();
  EXPECT_NE(P, nullptr) << S.diagnostics().str();
  if (!P)
    return "<compile failed>";
  std::ostringstream OS;
  OS << ptaSignature(*P, *S.pointsTo());
  OS << modrefSignature(*P, *S.modRef());
  for (const Instr *Seed : printSeeds(*P))
    for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
      const SliceResult *R = S.sliceBackwardCached(Seed, Mode);
      EXPECT_NE(R, nullptr);
      OS << Seed->loc().Line << (Mode == SliceMode::Thin ? "t|" : "T|")
         << (R ? renderSlice(*R, *P) : "<null>") << "\n";
    }
  SDGOptions CS;
  CS.ContextSensitive = true;
  S.setSDGOptions(CS);
  const SliceResult *CsR =
      S.sliceBackwardCached(printSeeds(*P).back(), SliceMode::Thin);
  EXPECT_NE(CsR, nullptr);
  OS << "cs|" << (CsR ? renderSlice(*CsR, *P) : "<null>") << "\n";
  S.setSDGOptions(SDGOptions{});
  return OS.str();
}

class IncrementalDifferential : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(IncrementalDifferential, EditScriptsMatchColdRebuild) {
  const unsigned Threads = GetParam();
  for (const EditScript &Script : editScripts()) {
    AnalysisBudget B;
    B.BudgetMs = 60'000;
    B.start();

    AnalysisSession S{std::string(BaseSource)};
    S.setThreads(Threads);
    S.setIncremental(true);
    if (Script.Budgeted)
      S.setBudget(&B);
    // Warm every stage (and the caches the update path patches).
    ASSERT_FALSE(sessionSignature(S).empty()) << Script.Name;

    S.setSource(Script.Edited);
    const AnalysisSession::IncrementalStats &St = S.incrementalStats();
    EXPECT_EQ(St.Attempts, 1u) << Script.Name;
    if (Script.ExpectApplied) {
      // The fast path must actually run: compile reuse, an in-place
      // points-to update, a mod-ref update, and an SDG patch — a
      // silent cold fallback here is a performance regression.
      EXPECT_EQ(St.Applied, 1u)
          << Script.Name << ": " << St.LastFallbackReason;
      EXPECT_GT(St.FunctionsReused, 0u) << Script.Name;
      EXPECT_GT(St.FunctionsRecompiled, 0u) << Script.Name;
      EXPECT_EQ(St.PtaUpdates, 1u)
          << Script.Name << ": " << St.LastFallbackReason;
      EXPECT_EQ(St.ModRefUpdates, 1u)
          << Script.Name << ": " << St.LastFallbackReason;
      EXPECT_EQ(St.SdgPatches, 1u)
          << Script.Name << ": " << St.LastFallbackReason;
    } else {
      EXPECT_EQ(St.Applied, 0u) << Script.Name;
      EXPECT_GE(St.ColdFallbacks, 1u) << Script.Name;
      EXPECT_FALSE(St.LastFallbackReason.empty()) << Script.Name;
    }

    const std::string Incremental = sessionSignature(S);

    AnalysisSession Cold(Script.Edited);
    Cold.setThreads(Threads);
    const std::string Reference = sessionSignature(Cold);

    EXPECT_EQ(Incremental, Reference) << Script.Name;
  }
}

// A session absorbs a whole edit *stream*, not one edit: chain every
// script's edit through one session (cold-eligible and fast-path
// edits interleaved), checking the differential contract after each
// step. This is the REPL `edit`/`reload` usage pattern.
TEST_P(IncrementalDifferential, ChainedEditStreamMatchesColdAtEveryStep) {
  const unsigned Threads = GetParam();
  AnalysisSession S{std::string(BaseSource)};
  S.setThreads(Threads);
  S.setIncremental(true);
  ASSERT_FALSE(sessionSignature(S).empty());

  uint64_t AppliedSoFar = 0;
  for (const EditScript &Script : editScripts()) {
    if (Script.Budgeted)
      continue; // The stream stays unbudgeted.
    S.setSource(Script.Edited);
    AppliedSoFar += Script.ExpectApplied ? 1 : 0;

    AnalysisSession Cold(Script.Edited);
    Cold.setThreads(Threads);
    EXPECT_EQ(sessionSignature(S), sessionSignature(Cold)) << Script.Name;

    // Return to base so every script edits the same skeleton; this
    // reverse edit is itself incremental for body-only scripts.
    S.setSource(std::string(BaseSource));
    AppliedSoFar += Script.ExpectApplied ? 1 : 0;
    AnalysisSession ColdBase{std::string(BaseSource)};
    ColdBase.setThreads(Threads);
    EXPECT_EQ(sessionSignature(S), sessionSignature(ColdBase))
        << Script.Name << " (reverse)";
  }
  EXPECT_EQ(S.incrementalStats().Applied, AppliedSoFar);
  EXPECT_GT(S.incrementalStats().FunctionsReused, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalDifferential,
                         ::testing::Values(1u, 4u));
