//===-- properties_test.cpp - Property-based invariant tests --------------------==//
//
// Parameterized sweeps over seeded random ThinJ programs checking the
// paper's semantic invariants end-to-end:
//
//  - every thin slice is a subset of the traditional slice (Sec. 3);
//  - the fully expanded thin slice equals the traditional slice
//    ("in the limit", Sec. 2);
//  - seeds belong to their own slices; slicing is deterministic;
//  - the dynamic thin slice observed by the interpreter is a subset of
//    the static thin slice (the static analysis is a sound
//    over-approximation of dynamic producer flow);
//  - generated programs compile, verify, and execute deterministically.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Generator.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <gtest/gtest.h>

#include <set>

using namespace tsl;

namespace {

struct Built {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;
  std::vector<const Instr *> Seeds; ///< All print statements.
};

Built buildFromSource(const std::string &Source) {
  Built B;
  B.S = std::make_unique<AnalysisSession>(Source);
  B.P = B.S->program();
  EXPECT_NE(B.P, nullptr) << B.S->diagnostics().str();
  if (!B.P)
    return B;
  EXPECT_TRUE(verifyProgram(*B.P).empty());
  B.PTA = B.S->pointsTo();
  B.G = B.S->sdg();
  for (const auto &M : B.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          B.Seeds.push_back(I.get());
  return B;
}

Built build(uint64_t Seed) {
  return buildFromSource(generateRandomProgram(Seed));
}

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomProgramProperty, ThinIsSubsetOfTraditional) {
  Built B = build(GetParam());
  ASSERT_NE(B.P, nullptr);
  for (const Instr *Seed : B.Seeds) {
    SliceResult Thin = sliceBackward(*B.G, Seed, SliceMode::Thin);
    SliceResult Trad = sliceBackward(*B.G, Seed, SliceMode::Traditional);
    BitSet Extra = Thin.nodeSet();
    Extra.subtract(Trad.nodeSet());
    EXPECT_TRUE(Extra.empty());
    EXPECT_TRUE(Thin.contains(Seed));
    EXPECT_TRUE(Trad.contains(Seed));
  }
}

TEST_P(RandomProgramProperty, ExpansionReachesTraditional) {
  Built B = build(GetParam());
  ASSERT_NE(B.P, nullptr);
  ThinExpansion Exp(*B.G, *B.PTA);
  for (const Instr *Seed : B.Seeds) {
    SliceResult Expanded = Exp.expandToTraditional(Seed);
    SliceResult Trad = sliceBackward(*B.G, Seed, SliceMode::Traditional);
    EXPECT_TRUE(Expanded.nodeSet() == Trad.nodeSet()) << "seed @ line "
        << Seed->loc().Line;
  }
}

TEST_P(RandomProgramProperty, SlicingIsDeterministic) {
  Built B1 = build(GetParam());
  Built B2 = build(GetParam());
  ASSERT_NE(B1.P, nullptr);
  ASSERT_EQ(B1.Seeds.size(), B2.Seeds.size());
  for (size_t I = 0; I != B1.Seeds.size(); ++I) {
    SliceResult S1 = sliceBackward(*B1.G, B1.Seeds[I], SliceMode::Thin);
    SliceResult S2 = sliceBackward(*B2.G, B2.Seeds[I], SliceMode::Thin);
    // Node ids may differ across builds; compare by source lines.
    auto L1 = S1.sourceLines();
    auto L2 = S2.sourceLines();
    ASSERT_EQ(L1.size(), L2.size());
    for (size_t J = 0; J != L1.size(); ++J)
      EXPECT_EQ(L1[J].Line, L2[J].Line);
  }
}

TEST_P(RandomProgramProperty, ExecutionIsDeterministic) {
  Built B = build(GetParam());
  ASSERT_NE(B.P, nullptr);
  InterpResult R1 = interpret(*B.P);
  InterpResult R2 = interpret(*B.P);
  EXPECT_EQ(R1.Completed, R2.Completed);
  EXPECT_EQ(R1.Output, R2.Output);
}

TEST_P(RandomProgramProperty, DynamicThinSliceWithinStatic) {
  // Soundness: every statement the interpreter observes producing the
  // seed's value must be in the static thin slice.
  Built B = build(GetParam());
  ASSERT_NE(B.P, nullptr);
  InterpOptions Opts;
  Opts.TraceDeps = true;
  InterpResult R = interpret(*B.P, Opts);
  // Even on runtime errors the executed prefix is a valid witness.
  for (const Instr *Seed : B.Seeds) {
    auto DynStmts = R.Trace.dynamicThinSliceOfLast(Seed);
    if (DynStmts.empty())
      continue; // Seed never executed.
    SliceResult Static = sliceBackward(*B.G, Seed, SliceMode::Thin);
    for (const Instr *I : DynStmts)
      EXPECT_TRUE(Static.contains(I))
          << "dynamic producer at line " << I->loc().Line
          << " missing from static thin slice of seed at line "
          << Seed->loc().Line;
  }
}

TEST_P(RandomProgramProperty, TabulationWithinContextInsensitive) {
  // The context-sensitive slice never contains a source line the
  // context-insensitive slice lacks (CS only removes spurious flows).
  Built B = build(GetParam());
  ASSERT_NE(B.P, nullptr);
  ModRefResult MR(*B.P, *B.PTA);
  SDGOptions CSOpts;
  CSOpts.ContextSensitive = true;
  std::unique_ptr<SDG> CS = buildSDG(*B.P, *B.PTA, &MR, CSOpts);
  TabulationSlicer Tab(*CS, SliceMode::Thin);
  for (const Instr *Seed : B.Seeds) {
    SliceResult CSSlice = Tab.slice(Seed);
    SliceResult CISlice = sliceBackward(*B.G, Seed, SliceMode::Thin);
    std::set<unsigned> CILines;
    for (const SourceLine &L : CISlice.sourceLines())
      CILines.insert(L.Line);
    for (const SourceLine &L : CSSlice.sourceLines())
      EXPECT_TRUE(CILines.count(L.Line))
          << "CS-only line " << L.Line << " for seed at line "
          << Seed->loc().Line;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// The same invariants on the hand-written workload programs
//===----------------------------------------------------------------------===//

#include "eval/Workload.h"

namespace {

class WorkloadProperty : public ::testing::TestWithParam<int> {};

const WorkloadProgram &nthWorkload(int N) {
  static std::vector<WorkloadProgram> All = [] {
    std::vector<WorkloadProgram> Out;
    Out.push_back(makeFigure1());
    Out.push_back(makeFigure2());
    Out.push_back(makeFigure4());
    Out.push_back(makeFigure5());
    std::set<std::string> Seen;
    for (const BugCase &B : debuggingCases())
      if (Seen.insert(B.Prog.Name).second)
        Out.push_back(B.Prog);
    for (const CastCase &C : toughCastCases())
      if (Seen.insert(C.Prog.Name).second)
        Out.push_back(C.Prog);
    return Out;
  }();
  return All[static_cast<size_t>(N) % All.size()];
}

} // namespace

TEST_P(WorkloadProperty, ThinSubsetAndExpansionOnWorkloads) {
  const WorkloadProgram &W = nthWorkload(GetParam());
  Built B = buildFromSource(W.Source);
  ASSERT_NE(B.P, nullptr) << W.Name;
  ThinExpansion Exp(*B.G, *B.PTA);
  // Sample a few seeds to keep runtime in check.
  size_t Step = std::max<size_t>(1, B.Seeds.size() / 4);
  for (size_t I = 0; I < B.Seeds.size(); I += Step) {
    const Instr *Seed = B.Seeds[I];
    SliceResult Thin = sliceBackward(*B.G, Seed, SliceMode::Thin);
    SliceResult Trad = sliceBackward(*B.G, Seed, SliceMode::Traditional);
    BitSet Extra = Thin.nodeSet();
    Extra.subtract(Trad.nodeSet());
    EXPECT_TRUE(Extra.empty()) << W.Name;
    SliceResult Expanded = Exp.expandToTraditional(Seed);
    EXPECT_TRUE(Expanded.nodeSet() == Trad.nodeSet()) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::Range(0, 12));
