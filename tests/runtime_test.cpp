//===-- runtime_test.cpp - Container runtime semantics and analysis -------------==//
//
// The ThinJ container library (Vector/Stack/LinkedList/HashMap) is
// analyzed source, so its behavior matters twice: the interpreter must
// execute it correctly (growth, collisions, traversal), and the
// analyses must trace values through its internals.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Runtime.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

InterpResult runWithRuntime(const std::string &Body,
                            InterpOptions Opts = {}) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(runtimeLibrarySource() + Body, Diag);
  EXPECT_NE(P, nullptr) << Diag.str();
  if (!P)
    return {};
  return interpret(*P, Opts);
}

} // namespace

TEST(Runtime, VectorGrowsPastInitialCapacity) {
  InterpResult R = runWithRuntime(R"(
def main() {
  var v = new Vector();
  for (var i = 0; i < 40; i = i + 1) {
    v.add("item" + i);
  }
  print(v.size());
  print((string) v.get(0));
  print((string) v.get(39));
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<std::string>{"40", "item0", "item39"}));
}

TEST(Runtime, VectorSetAndRemoveLast) {
  InterpResult R = runWithRuntime(R"(
def main() {
  var v = new Vector();
  v.add("a");
  v.add("b");
  v.set(0, "z");
  print((string) v.removeLast());
  print(v.size());
  print(v.isEmpty());
  print((string) v.get(0));
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"b", "1", "false", "z"}));
}

TEST(Runtime, StackLifo) {
  InterpResult R = runWithRuntime(R"(
def main() {
  var s = new Stack();
  s.push("first");
  s.push("second");
  print((string) s.peek());
  print((string) s.pop());
  print((string) s.pop());
  print(s.isEmpty());
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"second", "second", "first",
                                                "true"}));
}

TEST(Runtime, LinkedListOrder) {
  InterpResult R = runWithRuntime(R"(
def main() {
  var l = new LinkedList();
  l.addLast("x");
  l.addLast("y");
  l.addLast("z");
  print(l.size());
  for (var i = 0; i < l.size(); i = i + 1) {
    print((string) l.get(i));
  }
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"3", "x", "y", "z"}));
}

TEST(Runtime, HashMapBasics) {
  InterpResult R = runWithRuntime(R"(
def main() {
  var m = new HashMap();
  m.put("alpha", "1");
  m.put("beta", "2");
  m.put("alpha", "updated");
  print((string) m.get("alpha"));
  print((string) m.get("beta"));
  print(m.get("gamma") == null);
  print(m.containsKey("beta"));
  print(m.size());
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"updated", "2", "true",
                                                "true", "2"}));
}

TEST(Runtime, HashMapManyKeysCollide) {
  // 64 keys in 16 buckets force chains; every key must survive.
  InterpResult R = runWithRuntime(R"(
def main() {
  var m = new HashMap();
  for (var i = 0; i < 64; i = i + 1) {
    m.put("key" + i, "val" + i);
  }
  var ok = true;
  for (var i = 0; i < 64; i = i + 1) {
    var got = (string) m.get("key" + i);
    if (!got.equals("val" + i)) {
      ok = false;
    }
  }
  print(ok);
  print(m.size());
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"true", "64"}));
}

TEST(Runtime, RecursionDepthLimit) {
  InterpOptions Opts;
  Opts.MaxCallDepth = 100;
  InterpResult R = runWithRuntime(R"(
def dive(n: int): int {
  return dive(n + 1);
}
def main() {
  print(dive(0));
}
)",
                                  Opts);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("depth"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Analysis through the runtime
//===----------------------------------------------------------------------===//

namespace {

struct Analyzed {
  std::unique_ptr<Program> P;
  std::unique_ptr<PointsToResult> PTA;
  std::unique_ptr<SDG> G;

  explicit Analyzed(const std::string &Body) {
    DiagnosticEngine Diag;
    P = compileThinJ(runtimeLibrarySource() + Body, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (!P)
      return;
    PTA = runPointsTo(*P);
    G = buildSDG(*P, *PTA, nullptr);
  }
};

} // namespace

TEST(Runtime, ThinSliceThroughHashMap) {
  unsigned Offset = runtimeLibraryLines();
  Analyzed A(R"(
def main() {
  var m = new HashMap();
  var secret = readLine();
  m.put("k", secret);
  var out = (string) m.get("k");
  print(out);
}
)");
  const Instr *Seed = nullptr;
  for (const auto &M : A.P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seed = I.get();
  SliceResult Thin = sliceBackward(*A.G, Seed, SliceMode::Thin);
  // The secret's producers: readLine (user line 4), the put call
  // (line 5), and inside the runtime the MapEntry value store.
  EXPECT_TRUE(A.P->mainMethod() &&
              Thin.containsLine(A.P->mainMethod(), Offset + 4));
  EXPECT_TRUE(Thin.containsLine(A.P->mainMethod(), Offset + 5));
  bool TouchesMapEntry = false;
  for (const Instr *I : Thin.statements())
    if (const auto *St = dyn_cast<StoreInstr>(I))
      if (A.P->strings().str(St->field()->name()) == "value")
        TouchesMapEntry = true;
  EXPECT_TRUE(TouchesMapEntry);
  // The hashing arithmetic (indexFor) is index material: not thin.
  const Method *IndexFor = nullptr;
  for (const auto &M : A.P->methods())
    if (M->qualifiedName(A.P->strings()) == "HashMap.indexFor")
      IndexFor = M.get();
  ASSERT_NE(IndexFor, nullptr);
  bool TouchesIndexFor = false;
  for (const SourceLine &L : Thin.sourceLines())
    TouchesIndexFor |= L.M == IndexFor;
  EXPECT_FALSE(TouchesIndexFor);
  // But traditional slicing does wade into it.
  SliceResult Trad = sliceBackward(*A.G, Seed, SliceMode::Traditional);
  bool TradTouchesIndexFor = false;
  for (const SourceLine &L : Trad.sourceLines())
    TradTouchesIndexFor |= L.M == IndexFor;
  EXPECT_TRUE(TradTouchesIndexFor);
}

TEST(Runtime, TwoHashMapsStayApartUnderObjSens) {
  Analyzed A(R"(
def main() {
  var m1 = new HashMap();
  var m2 = new HashMap();
  m1.put("k", "one");
  m2.put("k", "two");
  var r1 = (string) m1.get("k");
  var r2 = (string) m2.get("k");
  print(r1);
  print(r2);
}
)");
  const Local *R1 = nullptr, *R2 = nullptr;
  for (const auto &L : A.P->mainMethod()->locals()) {
    std::string Name = A.P->strings().str(L->baseName());
    if (Name == "r1" && L->version())
      R1 = L.get();
    if (Name == "r2" && L->version())
      R2 = L.get();
  }
  ASSERT_TRUE(R1 && R2);
  EXPECT_FALSE(A.PTA->mayAlias(R1, R2));
}

TEST(Runtime, DeepContainerNestingBoundedCloning) {
  // Vectors of vectors of vectors: the MaxObjSensDepth bound keeps the
  // context chains finite while the analysis stays sound.
  PTAOptions Opts;
  Opts.MaxObjSensDepth = 2;
  DiagnosticEngine Diag;
  auto P = compileThinJ(runtimeLibrarySource() + R"(
def nest(depth: int): Vector {
  var v = new Vector();
  if (depth > 0) {
    v.add(nest(depth - 1));
  }
  return v;
}
def main() {
  var root = nest(5);
  var inner = (Vector) root.get(0);
  print(inner.size());
}
)",
                        Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  auto PTA = runPointsTo(*P, Opts);
  // Terminates (bounded contexts) and the cast target is a Vector.
  EXPECT_GT(PTA->callGraph().nodes().size(), 0u);
  InterpResult R = interpret(*P);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output.front(), "1");
}
