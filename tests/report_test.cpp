//===-- report_test.cpp - Slice narration unit tests ----------------------------==//

#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Report.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }
};

} // namespace

TEST(Report, SeedFirstAndDepthsMonotoneInBfsOrder) {
  Fixture F(R"(
def main() {
  var a = readInt();
  var b = a + 1;
  print(b);
}
)");
  SliceNarration Story = narrateSlice(*F.G, F.lastAtLine(5), SliceMode::Thin);
  const auto &Steps = Story.steps();
  ASSERT_FALSE(Steps.empty());
  EXPECT_EQ(Steps.front().ViaNode, -1);
  EXPECT_EQ(Steps.front().Depth, 0u);
  for (size_t I = 1; I < Steps.size(); ++I) {
    EXPECT_GE(Steps[I].Depth, Steps[I - 1].Depth); // BFS order.
    EXPECT_GE(Steps[I].ViaNode, 0);
    EXPECT_GT(Steps[I].Depth, 0u);
  }
}

TEST(Report, EveryStepHasReachedProvenance) {
  Fixture F(makeFigure1().Source);
  WorkloadProgram W = makeFigure1();
  SliceNarration Story = narrateSlice(
      *F.G, F.lastAtLine(W.markerLine("seed")), SliceMode::Thin);
  // Each non-seed step's ViaNode must itself appear earlier.
  BitSet Seen;
  for (const NarrationStep &Step : Story.steps()) {
    if (Step.ViaNode >= 0) {
      EXPECT_TRUE(Seen.test(static_cast<unsigned>(Step.ViaNode)));
    }
    Seen.insert(Step.Node);
  }
}

TEST(Report, RenderingNamesTheReasons) {
  Fixture F(R"(
class Box { var v: Object; }
def fill(b: Box, x: Object) {
  b.v = x;
}
def main() {
  var b = new Box();
  fill(b, new Object());
  var r = b.v;
  print(r == null);
}
)");
  SliceNarration Story = narrateSlice(*F.G, F.lastAtLine(10),
                                      SliceMode::Thin);
  std::string Text = Story.str();
  EXPECT_NE(Text.find("[seed]"), std::string::npos);
  EXPECT_NE(Text.find("produces the value used by"), std::string::npos);
  EXPECT_NE(Text.find("passes an argument into"), std::string::npos);
  // Thin narration never explains via base pointers or control.
  EXPECT_EQ(Text.find("base pointer"), std::string::npos);
  EXPECT_EQ(Text.find("controls whether"), std::string::npos);

  SliceNarration Trad = narrateSlice(*F.G, F.lastAtLine(10),
                                     SliceMode::Traditional);
  EXPECT_NE(Trad.str().find("base pointer"), std::string::npos);
}

TEST(Report, LineOffsetRendering) {
  Fixture F(R"(
def main() {
  var a = 1;
  print(a);
}
)");
  SliceNarration Story = narrateSlice(*F.G, F.lastAtLine(4), SliceMode::Thin);
  // With an offset of 1, line 4 renders as 3.
  std::string Text = Story.str(1);
  EXPECT_NE(Text.find("main:3"), std::string::npos);
  EXPECT_EQ(Text.find("main:4"), std::string::npos);
}

TEST(Report, NarrationCoversTheThinSliceLines) {
  WorkloadProgram W = makeFigure1();
  Fixture F(W.Source);
  const Instr *Seed = F.lastAtLine(W.markerLine("seed"));
  SliceNarration Story = narrateSlice(*F.G, Seed, SliceMode::Thin);
  SliceResult Slice = sliceBackward(*F.G, Seed, SliceMode::Thin);
  // Every narration node is in the slice and vice versa.
  BitSet Narrated;
  for (const NarrationStep &Step : Story.steps())
    Narrated.insert(Step.Node);
  EXPECT_TRUE(Narrated == Slice.nodeSet());
  // The buggy line is narrated.
  EXPECT_NE(Story.str().find(
                ":" + std::to_string(W.markerLine("bug"))),
            std::string::npos);
}
