//===-- interp_test.cpp - Interpreter and dynamic slicing tests -----------------==//

#include "dyn/Interp.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

#include <set>

using namespace tsl;

namespace {

// Keep holds the compiled program when the caller inspects pointers
// into it (e.g. InterpResult::FailurePoint) after run() returns.
InterpResult run(const std::string &Source, InterpOptions Opts = {},
                 std::unique_ptr<Program> *Keep = nullptr) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(Source, Diag);
  EXPECT_NE(P, nullptr) << Diag.str();
  if (!P)
    return {};
  InterpResult R = interpret(*P, Opts);
  if (Keep)
    *Keep = std::move(P);
  return R;
}

} // namespace

TEST(Interp, ArithmeticAndPrinting) {
  InterpResult R = run(R"(
def main() {
  print(2 + 3 * 4);
  print(10 / 3);
  print(10 % 3);
  print(-5);
  print(2 < 3);
  print(2 == 2);
  print(true);
  print(!true);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<std::string>{"14", "3", "1", "-5", "true", "true",
                                      "true", "false"}));
}

TEST(Interp, ControlFlow) {
  InterpResult R = run(R"(
def main() {
  var total = 0;
  for (var i = 0; i < 5; i = i + 1) {
    if (i % 2 == 0) {
      total = total + i;
    }
  }
  print(total);
  var j = 0;
  while (true) {
    j = j + 1;
    if (j == 3) { break; }
  }
  print(j);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"6", "3"}));
}

TEST(Interp, ShortCircuitDoesNotEvaluateRhs) {
  InterpResult R = run(R"(
def boom(): bool {
  var arr = new int[1];
  print(arr[5]);
  return true;
}
def main() {
  if (false && boom()) { print("no"); }
  if (true || boom()) { print("yes"); }
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"yes"}));
}

TEST(Interp, StringsAndBuiltins) {
  InterpResult R = run(R"(
def main() {
  var s = "hello world";
  print(s.length());
  print(s.indexOf("world"));
  print(s.substring(0, 5));
  print(s + "!");
  print("a".equals("a"));
  print(s.charAt(0));
  print(str(42) + "x");
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<std::string>{"11", "6", "hello", "hello world!",
                                      "true", "104", "42x"}));
}

TEST(Interp, ObjectsFieldsDispatch) {
  InterpResult R = run(R"(
class Animal {
  var name: string;
  def rename(n: string) { name = n; }
  def speak(): string { return "..."; }
}
class Cat extends Animal {
  def speak(): string { return name + " says meow"; }
}
def main() {
  var c = new Cat();
  c.rename("tom");
  var a: Animal = c;
  print(a.speak());
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"tom says meow"}));
}

TEST(Interp, StaticFieldsAndClinit) {
  InterpResult R = run(R"(
class Cfg {
  static var level: int = 7;
  static var name: string = "prod";
}
def main() {
  print(Cfg.level);
  Cfg.level = 9;
  print(Cfg.level);
  print(Cfg.name);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"7", "9", "prod"}));
}

TEST(Interp, ArraysAndDefaults) {
  InterpResult R = run(R"(
def main() {
  var a = new int[3];
  print(a[0]);
  a[1] = 5;
  print(a[1] + a.length);
  var objs = new string[2];
  print(objs[0] == null);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"0", "8", "true"}));
}

TEST(Interp, InputsConsumedInOrder) {
  InterpOptions Opts;
  Opts.InputInts = {10, 20};
  Opts.InputLines = {"first", "second"};
  InterpResult R = run(R"(
def main() {
  print(readInt() + readInt());
  print(readLine());
  print(readLine());
  print(readInt());
}
)",
                       Opts);
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<std::string>{"30", "first", "second", "0"}));
}

TEST(Interp, InstanceOfAndCasts) {
  InterpResult R = run(R"(
class A { }
class B extends A { }
def main() {
  var b: A = new B();
  print(b instanceof B);
  print(b instanceof A);
  var a: A = new A();
  print(a instanceof B);
  var back = (B) b;
  print(back == b);
  print(null instanceof A);
}
)");
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"true", "true", "false",
                                                "true", "false"}));
}

//===----------------------------------------------------------------------===//
// Failures
//===----------------------------------------------------------------------===//

TEST(InterpFailures, NullDereference) {
  std::unique_ptr<Program> P;
  InterpResult R = run(R"(
class A { var f: int; }
def main() {
  var a: A = null;
  print(a.f);
}
)",
                       {}, &P);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("null dereference"), std::string::npos);
  ASSERT_NE(R.FailurePoint, nullptr);
  EXPECT_EQ(R.FailurePoint->loc().Line, 5u);
}

TEST(InterpFailures, ArrayBounds) {
  InterpResult R = run("def main() { var a = new int[2]; print(a[5]); }");
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(InterpFailures, BadCast) {
  InterpResult R = run(R"(
class A { }
class B extends A { }
def main() {
  var a: A = new A();
  var b = (B) a;
}
)");
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("bad cast"), std::string::npos);
}

TEST(InterpFailures, DivisionByZero) {
  InterpResult R = run("def main() { var z = 0; print(1 / z); }");
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(InterpFailures, UncaughtThrowReportsLine) {
  std::unique_ptr<Program> P;
  InterpResult R = run(R"(
class Oops { }
def main() {
  throw new Oops();
}
)",
                       {}, &P);
  EXPECT_TRUE(R.ThrewException);
  ASSERT_NE(R.FailurePoint, nullptr);
  EXPECT_EQ(R.FailurePoint->loc().Line, 4u);
}

TEST(InterpFailures, StepLimit) {
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  InterpResult R = run("def main() { while (true) { } }", Opts);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(InterpFailures, SubstringBounds) {
  InterpResult R = run(R"(
def main() {
  var s = "abc";
  print(s.substring(1, 9));
}
)");
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("substring"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dynamic thin slicing
//===----------------------------------------------------------------------===//

TEST(DynSlice, TracesProducerChain) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  var a = 5;
  var junk = 9;
  var b = a + 1;
  var c = b * 2;
  print(c);
  print(junk);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr);
  InterpOptions Opts;
  Opts.TraceDeps = true;
  InterpResult R = interpret(*P, Opts);
  ASSERT_TRUE(R.Completed) << R.Error;

  // Find the print(c) instruction.
  const Instr *PrintC = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()) && I->loc().Line == 7)
          PrintC = I.get();
  ASSERT_NE(PrintC, nullptr);

  auto Stmts = R.Trace.dynamicThinSliceOfLast(PrintC);
  ASSERT_FALSE(Stmts.empty());
  std::set<unsigned> Lines;
  for (const Instr *I : Stmts)
    Lines.insert(I->loc().Line);
  EXPECT_TRUE(Lines.count(3)); // a
  EXPECT_TRUE(Lines.count(5)); // b
  EXPECT_TRUE(Lines.count(6)); // c
  EXPECT_FALSE(Lines.count(4)); // junk
}

TEST(DynSlice, HeapFlowRecordsTheWritingStore) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
class Box { var v: int; }
def main() {
  var b = new Box();
  b.v = 41;
  b.v = 42;
  print(b.v);
}
)",
                        Diag);
  ASSERT_NE(P, nullptr);
  InterpOptions Opts;
  Opts.TraceDeps = true;
  InterpResult R = interpret(*P, Opts);
  ASSERT_TRUE(R.Completed);
  const Instr *Print = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Print = I.get();
  auto Stmts = R.Trace.dynamicThinSliceOfLast(Print);
  std::set<unsigned> Lines;
  for (const Instr *I : Stmts)
    Lines.insert(I->loc().Line);
  // Only the second store actually produced the printed value.
  EXPECT_TRUE(Lines.count(6));
  EXPECT_FALSE(Lines.count(5));
}

TEST(DynSlice, SeedNeverExecutedIsEmpty) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(R"(
def main() {
  if (false) {
    print("never");
  }
  print("always");
}
)",
                        Diag);
  ASSERT_NE(P, nullptr);
  InterpOptions Opts;
  Opts.TraceDeps = true;
  InterpResult R = interpret(*P, Opts);
  const Instr *Never = nullptr;
  for (const auto &M : P->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()) && I->loc().Line == 4)
          Never = I.get();
  ASSERT_NE(Never, nullptr);
  EXPECT_TRUE(R.Trace.dynamicThinSliceOfLast(Never).empty());
}
