//===-- expansion_test.cpp - Thin-slice expansion unit tests --------------------==//

#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;
  std::unique_ptr<ThinExpansion> Exp;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
    Exp = std::make_unique<ThinExpansion>(*G, *PTA);
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }

  bool hasLine(const SliceResult &S, unsigned Line) {
    for (const SourceLine &L : S.sourceLines())
      if (L.Line == Line)
        return true;
    return false;
  }
};

} // namespace

TEST(Expansion, AliasingExplanationFiltersIrrelevantObjects) {
  Fixture F(R"(
class C { var f: Object; }
def main() {
  var shared = new C();
  var other = new C();
  var w = shared;
  var r = shared;
  var noise = other;
  w.f = new Object();
  print(r.f == null);
  print(noise == null);
}
)");
  const Instr *Store = heapAccessAtLine(*F.P, 9);
  const Instr *Load = heapAccessAtLine(*F.P, 10);
  ASSERT_TRUE(Store && Load);
  SliceResult Aliasing = F.Exp->explainAliasing(Store, Load);
  EXPECT_TRUE(F.hasLine(Aliasing, 4));  // The shared allocation.
  EXPECT_TRUE(F.hasLine(Aliasing, 6));  // w = shared.
  EXPECT_TRUE(F.hasLine(Aliasing, 7));  // r = shared.
  // Filtering: 'other' flows to neither base.
  EXPECT_FALSE(F.hasLine(Aliasing, 5));
  EXPECT_FALSE(F.hasLine(Aliasing, 8));
}

TEST(Expansion, AliasingEmptyWhenNoHeapAccess) {
  Fixture F("def main() { var x = 1; print(x); }");
  const Instr *Print = F.lastAtLine(1);
  SliceResult S = F.Exp->explainAliasing(Print, Print);
  EXPECT_EQ(S.sizeStmts(), 0u);
}

TEST(Expansion, ControlExplainersAreTheGuards) {
  Fixture F(R"(
def main() {
  var c = readInt() > 0;
  if (c) {
    print("guarded");
  }
  print("free");
}
)");
  const Instr *Guarded = F.lastAtLine(5);
  const Instr *Free = F.lastAtLine(7);
  auto Controls = F.Exp->controlExplainers(Guarded);
  ASSERT_EQ(Controls.size(), 1u);
  EXPECT_TRUE(isa<BranchInstr>(Controls[0]));
  EXPECT_TRUE(F.Exp->controlExplainers(Free).empty());
}

TEST(Expansion, IndexExplanation) {
  Fixture F(R"(
def main() {
  var arr = new int[8];
  var wi = readInt();
  var ri = wi;
  arr[wi] = 7;
  print(arr[ri]);
}
)");
  const Instr *Write = heapAccessAtLine(*F.P, 6);
  const Instr *Read = heapAccessAtLine(*F.P, 7);
  ASSERT_TRUE(Write && Read);
  SliceResult Idx = F.Exp->explainIndices(Write, Read);
  EXPECT_TRUE(F.hasLine(Idx, 4)); // wi = readInt()
  EXPECT_TRUE(F.hasLine(Idx, 5)); // ri = wi
}

TEST(Expansion, FixpointEqualsTraditional) {
  // The paper's "in the limit" claim, on a program with heap flow,
  // aliasing, control, calls, and containers.
  Fixture F(R"(
class Holder { var item: Object; }
def stash(h: Holder, v: Object) {
  if (v != null) {
    h.item = v;
  }
}
def main() {
  var h = new Holder();
  var alias = h;
  stash(alias, new Object());
  var r = h.item;
  print(r == null);
}
)");
  const Instr *Seed = F.lastAtLine(12);
  SliceResult Expanded = F.Exp->expandToTraditional(Seed);
  SliceResult Trad = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  EXPECT_TRUE(Expanded.nodeSet() == Trad.nodeSet())
      << "expanded:\n"
      << Expanded.str() << "\ntraditional:\n"
      << Trad.str();
}

TEST(Expansion, Figure4EndToEnd) {
  // The full Section 4 walkthrough on the actual Figure 4 program.
  WorkloadProgram W = makeFigure4();
  Fixture F(W.Source);
  const Instr *Store = heapAccessAtLine(*F.P, W.markerLine("openfield-false"));
  const Instr *Load = heapAccessAtLine(*F.P, W.markerLine("isopen"));
  ASSERT_TRUE(Store && Load);
  SliceResult Aliasing = F.Exp->explainAliasing(Store, Load);
  // The File allocation and the Vector round trip appear.
  EXPECT_TRUE(F.hasLine(Aliasing, W.markerLine("file-alloc")));
  EXPECT_TRUE(F.hasLine(Aliasing, W.markerLine("vec-get-1")));
  // Statements about the Vector object itself (not the File) do not.
  SliceResult Thin = sliceBackward(*F.G, F.lastAtLine(W.markerLine("seed")),
                                   SliceMode::Thin);
  (void)Thin;
}
