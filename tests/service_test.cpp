//===-- service_test.cpp - thinsliced service tests -----------------------===//
//
// The serving layer, tested end to end over real Unix sockets: protocol
// strictness (malformed, truncated, oversized frames), concurrent
// clients sharing one warm session (answers byte-identical to an
// in-process AnalysisSession), admission-control RETRY under overload,
// incremental edits, snapshot-cache warm starts, and graceful drain —
// including through the actual thinsliced and thinslice binaries.
//
// Everything but the binary test runs the SliceServer in-process, so
// the sanitizer trees (`ctest -L service` under ASan/TSan) race- and
// leak-check the whole serving path: acceptor, per-connection readers,
// pool handlers, and the registry's reader/writer locking.
//
//===----------------------------------------------------------------------===//

#include "eval/Runtime.h"
#include "pipeline/Session.h"
#include "service/Client.h"
#include "service/Server.h"
#include "slicer/Report.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace tsl;

namespace {

// The paper's Figure 1 workload (also the CLI suite's program).
const char *kProgram = R"(def readNames(count: int): Vector {
  var firstNames = new Vector();
  for (var i = 0; i < count; i = i + 1) {
    var fullName = readLine();
    var spaceInd = fullName.indexOf(" ");
    var firstName = fullName.substring(0, spaceInd - 1);
    firstNames.add(firstName);
  }
  return firstNames;
}
def main() {
  var names = readNames(readInt());
  for (var i = 0; i < names.size(); i = i + 1) {
    print("FIRST NAME: " + (string) names.get(i));
  }
}
)";

// Same program with one body statement changed (substring end index):
// a function-granular edit the incremental path can absorb.
const char *kProgramEdited = R"(def readNames(count: int): Vector {
  var firstNames = new Vector();
  for (var i = 0; i < count; i = i + 1) {
    var fullName = readLine();
    var spaceInd = fullName.indexOf(" ");
    var firstName = fullName.substring(0, spaceInd + 1);
    firstNames.add(firstName);
  }
  return firstNames;
}
def main() {
  var names = readNames(readInt());
  for (var i = 0; i < names.size(); i = i + 1) {
    print("FIRST NAME: " + (string) names.get(i));
  }
}
)";

const char *kBroken = "def main() { var x = ; }\n";

/// What the daemon is fed: the runtime prefix plus the user program,
/// exactly as `thinslice --connect` sends it.
std::string fullSource(const char *UserProgram) {
  return runtimeLibrarySource() + UserProgram;
}

/// The in-process answer the daemon must reproduce byte for byte.
std::string expectedSlice(const std::string &Source, unsigned UserLine,
                          SliceMode Mode, bool CS) {
  unsigned LineOffset = runtimeLibraryLines();
  AnalysisSession S(Source);
  if (CS) {
    SDGOptions SO;
    SO.ContextSensitive = true;
    S.setSDGOptions(SO);
  }
  Program *P = S.program();
  EXPECT_NE(P, nullptr);
  SDG *G = S.sdg();
  EXPECT_NE(G, nullptr);
  const Instr *Seed = seedAtLine(*P, UserLine + LineOffset);
  EXPECT_NE(Seed, nullptr);
  SliceResult R = CS ? TabulationSlicer(*G, Mode, nullptr, &S.summaries())
                           .slice(Seed)
                     : sliceBackward(*G, Seed, Mode, nullptr);
  return renderSliceReport(R, sliceKindName(Mode, CS), UserLine, LineOffset);
}

std::string uniqueSockPath() {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/tsl-svc-" + std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

class ServiceTest : public ::testing::Test {
protected:
  void startServer(ServerOptions O = {}) {
    Sock = uniqueSockPath();
    O.SocketPath = Sock;
    Server = std::make_unique<SliceServer>(std::move(O));
    ASSERT_TRUE(Server->listen().isOk());
    Runner = std::thread([this] { ExitCode = Server->run(); });
  }

  void stopServer() {
    if (Runner.joinable()) {
      Server->requestShutdown();
      Runner.join();
    }
  }

  void TearDown() override {
    stopServer();
    ::unlink(Sock.c_str());
  }

  /// Connects a fresh client (asserting success).
  void connect(ServiceClient &C) {
    ASSERT_TRUE(C.connect(Sock).isOk()) << Sock;
  }

  /// Loads kProgram (plus runtime prefix) and returns the session id.
  std::string loadDefault(ServiceClient &C, bool CS = false,
                          bool Incremental = false) {
    ServiceResponse Resp;
    Status S = C.loadSource(fullSource(kProgram), CS, runtimeLibraryLines(),
                            Incremental, Resp);
    EXPECT_TRUE(S.isOk()) << S.str();
    EXPECT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
    EXPECT_FALSE(Resp.Body.empty());
    return Resp.Body;
  }

  std::string Sock;
  std::unique_ptr<SliceServer> Server;
  std::thread Runner;
  int ExitCode = -1;
};

//===----------------------------------------------------------------------===//
// Query correctness: remote answers == in-process answers
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, SliceMatchesInProcessSession) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C);

  for (unsigned Line : {4u, 6u, 13u}) {
    for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
      ServiceResponse Resp;
      ASSERT_TRUE(C.slice(Id, Line, Mode, Resp).isOk());
      ASSERT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
      EXPECT_EQ(Resp.Body,
                expectedSlice(fullSource(kProgram), Line, Mode, false));
    }
  }
}

TEST_F(ServiceTest, ContextSensitiveSliceMatchesInProcessSession) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C, /*CS=*/true);

  ServiceResponse Resp;
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, Resp).isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
  EXPECT_EQ(Resp.Body,
            expectedSlice(fullSource(kProgram), 6, SliceMode::Thin, true));
}

TEST_F(ServiceTest, BatchSliceMatchesSingleSlices) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C);

  std::vector<uint32_t> Lines{4, 6, 13};
  ServiceResponse Batch;
  ASSERT_TRUE(C.batchSlice(Id, Lines, SliceMode::Thin, Batch).isOk());
  ASSERT_EQ(Batch.Code, ServiceStatus::Ok) << Batch.Detail;

  std::string Expected;
  for (uint32_t L : Lines) {
    Expected += "=== seed line " + std::to_string(L) + " ===\n";
    Expected += expectedSlice(fullSource(kProgram), L, SliceMode::Thin, false);
  }
  EXPECT_EQ(Batch.Body, Expected);
}

TEST_F(ServiceTest, SecondLoadOfSameWorkloadReusesWarmSession) {
  startServer();
  ServiceClient A, B;
  connect(A);
  connect(B);
  std::string IdA = loadDefault(A);
  ServiceResponse Resp;
  ASSERT_TRUE(B.loadSource(fullSource(kProgram), false, runtimeLibraryLines(),
                           false, Resp)
                  .isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_EQ(Resp.Body, IdA);       // Same workload digest.
  EXPECT_EQ(Resp.Detail, "cached"); // Served from the warm registry.
}

TEST_F(ServiceTest, CompileFailureIsReportedAndQueryable) {
  startServer();
  ServiceClient C;
  connect(C);
  ServiceResponse Load;
  ASSERT_TRUE(C.loadSource(fullSource(kBroken), false, runtimeLibraryLines(),
                           false, Load)
                  .isOk());
  EXPECT_EQ(Load.Code, ServiceStatus::Error);
  EXPECT_NE(Load.Detail.find("error"), std::string::npos);

  // The failed session keeps its id: queries on it repeat the verdict.
  ServiceResponse Slice;
  ASSERT_TRUE(C.slice(Load.Body, 1, SliceMode::Thin, Slice).isOk());
  EXPECT_EQ(Slice.Code, ServiceStatus::Error);
}

TEST_F(ServiceTest, UnknownSessionAndMissingSeedAreBadRequests) {
  startServer();
  ServiceClient C;
  connect(C);
  ServiceResponse Resp;
  ASSERT_TRUE(C.slice("no-such-session", 6, SliceMode::Thin, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::BadRequest);
  EXPECT_NE(Resp.Detail.find("unknown session"), std::string::npos);

  std::string Id = loadDefault(C);
  ASSERT_TRUE(C.slice(Id, 9999, SliceMode::Thin, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::BadRequest);
  EXPECT_NE(Resp.Detail.find("no statement at line 9999"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Concurrency: many clients, one warm session
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, EightConcurrentClientsShareOneWarmSession) {
  startServer();
  ServiceClient Loader;
  connect(Loader);
  std::string Id = loadDefault(Loader);

  const unsigned Lines[] = {4, 6, 13};
  std::string Expected[3];
  for (int I = 0; I != 3; ++I)
    Expected[I] =
        expectedSlice(fullSource(kProgram), Lines[I], SliceMode::Thin, false);

  constexpr int NumClients = 8, QueriesEach = 6;
  std::atomic<int> Mismatches{0}, Failures{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T != NumClients; ++T) {
    Clients.emplace_back([&, T] {
      ServiceClient C;
      if (!C.connect(Sock).isOk()) {
        Failures.fetch_add(1);
        return;
      }
      for (int Q = 0; Q != QueriesEach; ++Q) {
        int Pick = (T + Q) % 3;
        ServiceResponse Resp;
        if (!C.slice(Id, Lines[Pick], SliceMode::Thin, Resp).isOk() ||
            Resp.Code != ServiceStatus::Ok) {
          Failures.fetch_add(1);
          return;
        }
        if (Resp.Body != Expected[Pick])
          Mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST_F(ServiceTest, OverloadAnswersRetryInsteadOfQueueing) {
  ServerOptions O;
  O.MaxQueue = 1;
  startServer(std::move(O));

  // One slow request occupies the only admission slot...
  ServiceClient Slow;
  connect(Slow);
  ServiceResponse SlowResp;
  std::thread SlowCall([&] { (void)Slow.ping(1000, SlowResp); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // ...so the concurrent one is answered RETRY immediately, not parked.
  ServiceClient Fast;
  connect(Fast);
  ServiceResponse FastResp;
  ASSERT_TRUE(Fast.ping(0, FastResp).isOk());
  EXPECT_EQ(FastResp.Code, ServiceStatus::Retry);
  EXPECT_NE(FastResp.Detail.find("overloaded"), std::string::npos);

  SlowCall.join();
  EXPECT_EQ(SlowResp.Code, ServiceStatus::Ok);
  EXPECT_EQ(SlowResp.Body, "pong");
  EXPECT_GE(Server->stats().Retries.load(), 1u);

  // The overload was transient: the next request is admitted again.
  ASSERT_TRUE(Fast.ping(0, FastResp).isOk());
  EXPECT_EQ(FastResp.Code, ServiceStatus::Ok);
}

//===----------------------------------------------------------------------===//
// Protocol strictness
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, MalformedPayloadIsRejectedConnectionSurvives) {
  startServer();
  ServiceClient C;
  connect(C);

  // A well-framed payload with a bogus protocol version.
  std::vector<uint8_t> Frame = {2, 0, 0, 0, /*payload*/ 0xFF, 0xFF};
  ASSERT_TRUE(C.sendRaw(Frame).isOk());
  FrameRead F = C.readRaw();
  ASSERT_EQ(F.K, FrameRead::Ok);
  ServiceResponse Resp;
  ASSERT_TRUE(decodeResponse(F.Payload, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::BadRequest);
  EXPECT_NE(Resp.Detail.find("protocol version"), std::string::npos);

  // The frame boundary was intact, so the connection still works.
  ASSERT_TRUE(C.ping(0, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_GE(Server->stats().BadFrames.load(), 1u);
}

TEST_F(ServiceTest, OversizedFrameIsRefusedAndConnectionClosed) {
  startServer();
  ServiceClient C;
  connect(C);

  // Header claiming 9 MiB: above the 8 MiB cap. The payload is never
  // read, so the server must answer and hang up.
  uint32_t Len = 9u << 20;
  std::vector<uint8_t> Header(4);
  for (int I = 0; I != 4; ++I)
    Header[static_cast<std::size_t>(I)] = static_cast<uint8_t>(Len >> (8 * I));
  ASSERT_TRUE(C.sendRaw(Header).isOk());

  FrameRead F = C.readRaw();
  ASSERT_EQ(F.K, FrameRead::Ok);
  ServiceResponse Resp;
  ASSERT_TRUE(decodeResponse(F.Payload, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::BadRequest);
  EXPECT_NE(Resp.Detail.find("exceeds"), std::string::npos);
  EXPECT_EQ(C.readRaw().K, FrameRead::Eof); // Desynced: server hung up.

  // The daemon itself is fine.
  ServiceClient C2;
  connect(C2);
  ASSERT_TRUE(C2.ping(0, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::Ok);
}

TEST_F(ServiceTest, TruncatedFrameAndMidRequestDisconnectAreContained) {
  startServer();

  {
    // Truncated: header claims 100 bytes, only 10 arrive, then close.
    ServiceClient C;
    connect(C);
    std::vector<uint8_t> Partial = {100, 0, 0, 0, 1, 2, 3, 4, 5, 6,
                                    7,   8, 9, 10};
    ASSERT_TRUE(C.sendRaw(Partial).isOk());
    C.close();
  }
  {
    // Disconnect mid-request: a full valid request, but the client
    // vanishes before reading the response.
    ServiceClient C;
    connect(C);
    ServiceRequest Ping;
    Ping.Type = ServiceMsg::Ping;
    Ping.DelayMs = 50;
    ASSERT_TRUE(writeFrame(C.fd(), encodeRequest(Ping)).isOk());
    C.close();
  }

  // Either way the daemon keeps serving.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ServiceClient C;
  connect(C);
  ServiceResponse Resp;
  ASSERT_TRUE(C.ping(0, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_GE(Server->stats().BadFrames.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Edits and warm starts
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, EditTakesIncrementalPathAndChangesAnswers) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C, /*CS=*/false, /*Incremental=*/true);

  ServiceResponse Before;
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, Before).isOk());
  ASSERT_EQ(Before.Code, ServiceStatus::Ok);

  ServiceResponse Edit;
  ASSERT_TRUE(C.edit(Id, fullSource(kProgramEdited), Edit).isOk());
  ASSERT_EQ(Edit.Code, ServiceStatus::Ok) << Edit.Detail;
  EXPECT_EQ(Edit.Detail, "incremental");

  // Post-edit answers equal a cold in-process session on the new text.
  ServiceResponse After;
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, After).isOk());
  ASSERT_EQ(After.Code, ServiceStatus::Ok);
  EXPECT_EQ(After.Body,
            expectedSlice(fullSource(kProgramEdited), 6, SliceMode::Thin,
                          false));
}

TEST_F(ServiceTest, EditWithoutIncrementalRebuildsCold) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C, /*CS=*/false, /*Incremental=*/false);
  ServiceResponse Edit;
  ASSERT_TRUE(C.edit(Id, fullSource(kProgramEdited), Edit).isOk());
  ASSERT_EQ(Edit.Code, ServiceStatus::Ok) << Edit.Detail;
  EXPECT_EQ(Edit.Detail, "cold rebuild");
}

TEST_F(ServiceTest, EditToBrokenSourceReportsAndRecovers) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C, false, true);

  ServiceResponse Bad;
  ASSERT_TRUE(C.edit(Id, fullSource(kBroken), Bad).isOk());
  EXPECT_EQ(Bad.Code, ServiceStatus::Error);
  EXPECT_NE(Bad.Detail.find("error"), std::string::npos);

  // Slices during the broken window repeat the compile verdict...
  ServiceResponse Resp;
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::Error);

  // ...and a fixing edit brings the session back.
  ASSERT_TRUE(C.edit(Id, fullSource(kProgram), Resp).isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok);
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, Resp).isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_EQ(Resp.Body,
            expectedSlice(fullSource(kProgram), 6, SliceMode::Thin, false));
}

TEST_F(ServiceTest, ConcurrentSlicesDuringEditStayConsistent) {
  startServer();
  ServiceClient Loader;
  connect(Loader);
  std::string Id = loadDefault(Loader, false, true);

  const std::string OldAnswer =
      expectedSlice(fullSource(kProgram), 6, SliceMode::Thin, false);
  const std::string NewAnswer =
      expectedSlice(fullSource(kProgramEdited), 6, SliceMode::Thin, false);

  // Readers hammer the session while a writer flips the source back
  // and forth: every answer must be one of the two coherent states —
  // never a torn mix, never an internal error.
  std::atomic<bool> Stop{false};
  std::atomic<int> Bad{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 4; ++T) {
    Readers.emplace_back([&] {
      ServiceClient C;
      if (!C.connect(Sock).isOk()) {
        Bad.fetch_add(1);
        return;
      }
      while (!Stop.load()) {
        ServiceResponse Resp;
        if (!C.slice(Id, 6, SliceMode::Thin, Resp).isOk() ||
            Resp.Code != ServiceStatus::Ok ||
            (Resp.Body != OldAnswer && Resp.Body != NewAnswer)) {
          Bad.fetch_add(1);
          return;
        }
      }
    });
  }
  ServiceClient Editor;
  connect(Editor);
  for (int I = 0; I != 4; ++I) {
    ServiceResponse Resp;
    ASSERT_TRUE(
        Editor.edit(Id, fullSource(I % 2 ? kProgram : kProgramEdited), Resp)
            .isOk());
    ASSERT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
  }
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Bad.load(), 0);
}

TEST_F(ServiceTest, CacheDirWarmStartsTheNextDaemonGeneration) {
  std::string CacheDir =
      "/tmp/tsl-svc-cache-" + std::to_string(::getpid());
  ::mkdir(CacheDir.c_str(), 0755);

  {
    ServerOptions O;
    O.CacheDir = CacheDir;
    startServer(std::move(O));
    ServiceClient C;
    connect(C);
    ServiceResponse Resp;
    ASSERT_TRUE(C.loadSource(fullSource(kProgram), false,
                             runtimeLibraryLines(), false, Resp)
                    .isOk());
    ASSERT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
    EXPECT_EQ(Resp.Detail, "cold"); // First generation builds...
    stopServer();
  }

  ServerOptions O;
  O.CacheDir = CacheDir;
  startServer(std::move(O));
  ServiceClient C;
  connect(C);
  ServiceResponse Resp;
  ASSERT_TRUE(C.loadSource(fullSource(kProgram), false, runtimeLibraryLines(),
                           false, Resp)
                  .isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok) << Resp.Detail;
  EXPECT_EQ(Resp.Detail, "warm:cache-dir"); // ...the second reuses it.

  // And the warm-started session answers correctly.
  ASSERT_TRUE(C.slice(Resp.Body, 6, SliceMode::Thin, Resp).isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_EQ(Resp.Body,
            expectedSlice(fullSource(kProgram), 6, SliceMode::Thin, false));
}

//===----------------------------------------------------------------------===//
// Stats, shutdown, drain
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, StatsReportSessionAndServerTelemetry) {
  startServer();
  ServiceClient C;
  connect(C);
  std::string Id = loadDefault(C);
  ServiceResponse Resp;
  ASSERT_TRUE(C.slice(Id, 6, SliceMode::Thin, Resp).isOk());
  ASSERT_TRUE(C.stats(Id, Resp).isOk());
  ASSERT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_NE(Resp.Body.find("server: "), std::string::npos);
  EXPECT_NE(Resp.Body.find("warm sessions"), std::string::npos);
}

TEST_F(ServiceTest, ShutdownRequestDrainsTheServer) {
  startServer();
  ServiceClient C;
  connect(C);
  ServiceResponse Resp;
  ASSERT_TRUE(C.shutdown(Resp).isOk());
  EXPECT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_EQ(Resp.Body, "draining");

  Runner.join();
  EXPECT_EQ(ExitCode, 0);

  // The socket is gone: new connections are refused.
  ServiceClient After;
  EXPECT_FALSE(After.connect(Sock).isOk());
}

TEST_F(ServiceTest, DrainFinishesInFlightRequestsBeforeExiting) {
  startServer();
  ServiceClient C;
  connect(C);
  ServiceResponse Resp;
  std::thread Slow([&] { (void)C.ping(400, Resp); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Server->requestShutdown();
  Runner.join();
  EXPECT_EQ(ExitCode, 0);

  // The in-flight ping was answered, not dropped, on the way down.
  Slow.join();
  EXPECT_EQ(Resp.Code, ServiceStatus::Ok);
  EXPECT_EQ(Resp.Body, "pong");
}

//===----------------------------------------------------------------------===//
// The real binaries: thinsliced + thinslice --connect
//===----------------------------------------------------------------------===//

/// Captures stdout of \p Cmd (cli_test's popen pattern).
std::string runCapture(const std::string &Cmd, int *ExitCode = nullptr) {
  std::string Output;
  FILE *Pipe = popen((Cmd + " 2>/dev/null").c_str(), "r");
  if (!Pipe)
    return Output;
  char Buf[512];
  while (fgets(Buf, sizeof(Buf), Pipe))
    Output += Buf;
  int Rc = pclose(Pipe);
  if (ExitCode)
    *ExitCode = WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
  return Output;
}

TEST(ServiceBinaryTest, ConnectModeMatchesInProcessAndSigtermDrains) {
  // Tests run from build/tests; the tools live next door.
  const char *Daemon = "../tools/thinsliced";
  const char *Tool = "../tools/thinslice";
  std::string SockPath = uniqueSockPath();
  std::string Program = "/tmp/tsl-svc-prog-" +
                        std::to_string(::getpid()) + ".tsj";
  {
    std::ofstream Out(Program);
    Out << kProgram;
  }

  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    execl(Daemon, Daemon, "--socket", SockPath.c_str(),
          static_cast<char *>(nullptr));
    _exit(127);
  }
  // Wait for the readiness socket (the daemon prints a line too, but
  // the socket file is what connects can race on).
  bool Up = false;
  for (int I = 0; I != 100 && !Up; ++I) {
    struct stat St;
    Up = ::stat(SockPath.c_str(), &St) == 0;
    if (!Up)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(Up) << "daemon never bound " << SockPath;

  int LocalRc = -1, RemoteRc = -1;
  std::string Local =
      runCapture(std::string(Tool) + " " + Program + " --line 6", &LocalRc);
  std::string Remote = runCapture(std::string(Tool) + " " + Program +
                                      " --connect " + SockPath + " --line 6",
                                  &RemoteRc);
  EXPECT_EQ(LocalRc, 0);
  EXPECT_EQ(RemoteRc, 0);
  EXPECT_EQ(Remote, Local); // Byte-identical through the real binaries.
  EXPECT_NE(Local.find("thin slice from line 6"), std::string::npos);

  // SIGTERM: graceful drain, exit 0, socket removed.
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  struct stat St;
  EXPECT_NE(::stat(SockPath.c_str(), &St), 0);
  ::unlink(Program.c_str());
}

} // namespace
