//===-- parser_test.cpp - Parser unit tests -------------------------------------==//

#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace tsl;

namespace {

AstModule parseOk(const std::string &Source) {
  AstModule M;
  DiagnosticEngine Diag;
  bool Ok = parseModule(Source, M, Diag);
  EXPECT_TRUE(Ok) << Diag.str();
  return M;
}

void parseFails(const std::string &Source) {
  AstModule M;
  DiagnosticEngine Diag;
  EXPECT_FALSE(parseModule(Source, M, Diag)) << "expected syntax error";
}

/// Digs the single expression out of "def f() { return <expr>; }".
const ExprAst *exprOf(const AstModule &M) {
  EXPECT_EQ(M.Functions.size(), 1u);
  const BlockStmt *Body = M.Functions[0].Body;
  EXPECT_EQ(Body->Stmts.size(), 1u);
  return cast<ReturnStmt>(Body->Stmts[0])->Value;
}

AstModule parseExpr(const std::string &Expr) {
  return parseOk("def f(): int { return " + Expr + "; }");
}

} // namespace

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(Parser, EmptyModule) {
  AstModule M = parseOk("");
  EXPECT_TRUE(M.Classes.empty());
  EXPECT_TRUE(M.Functions.empty());
}

TEST(Parser, ClassWithMembers) {
  AstModule M = parseOk(R"(
class Point extends Shape {
  var x: int;
  var tags: string[];
  static var origin: Point;
  def move(dx: int, dy: int) { }
  static def make(): Point { return null; }
}
)");
  ASSERT_EQ(M.Classes.size(), 1u);
  const ClassDeclAst &C = M.Classes[0];
  EXPECT_EQ(C.Name, "Point");
  EXPECT_EQ(C.SuperName, "Shape");
  ASSERT_EQ(C.Fields.size(), 3u);
  EXPECT_EQ(C.Fields[1].Type.ArrayRank, 1u);
  EXPECT_TRUE(C.Fields[2].IsStatic);
  ASSERT_EQ(C.Methods.size(), 2u);
  EXPECT_FALSE(C.Methods[0].IsStatic);
  EXPECT_EQ(C.Methods[0].Params.size(), 2u);
  EXPECT_TRUE(C.Methods[1].IsStatic);
  EXPECT_TRUE(C.Methods[1].HasReturnType);
}

TEST(Parser, TopLevelFunction) {
  AstModule M = parseOk("def main() { print(1); }");
  ASSERT_EQ(M.Functions.size(), 1u);
  EXPECT_TRUE(M.Functions[0].IsStatic);
  EXPECT_FALSE(M.Functions[0].HasReturnType);
}

TEST(Parser, MultiDimensionalTypes) {
  AstModule M = parseOk("def f(g: int[][]): string[] { return null; }");
  EXPECT_EQ(M.Functions[0].Params[0].Type.ArrayRank, 2u);
  EXPECT_EQ(M.Functions[0].ReturnType.ArrayRank, 1u);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

TEST(Parser, StatementKinds) {
  AstModule M = parseOk(R"(
def f(c: bool) {
  var x = 1;
  var y: int = 2;
  x = y;
  if (c) { return; } else { throw null; }
  while (c) { break; }
  for (var i = 0; i < 3; i = i + 1) { continue; }
  print(x);
}
)");
  const BlockStmt *Body = M.Functions[0].Body;
  ASSERT_GE(Body->Stmts.size(), 7u);
  EXPECT_EQ(Body->Stmts[0]->Kind, StmtKind::VarDecl);
  EXPECT_FALSE(cast<VarDeclStmt>(Body->Stmts[0])->HasType);
  EXPECT_TRUE(cast<VarDeclStmt>(Body->Stmts[1])->HasType);
  EXPECT_EQ(Body->Stmts[2]->Kind, StmtKind::Assign);
  EXPECT_EQ(Body->Stmts[3]->Kind, StmtKind::If);
  EXPECT_EQ(Body->Stmts[4]->Kind, StmtKind::While);
  EXPECT_EQ(Body->Stmts[5]->Kind, StmtKind::Block); // for desugars.
  EXPECT_EQ(Body->Stmts[6]->Kind, StmtKind::Print);
}

TEST(Parser, ForDesugarsToWhile) {
  AstModule M = parseOk("def f() { for (var i = 0; i < 2; i = i + 1) { } }");
  const auto *Outer = cast<BlockStmt>(M.Functions[0].Body->Stmts[0]);
  ASSERT_EQ(Outer->Stmts.size(), 2u);
  EXPECT_EQ(Outer->Stmts[0]->Kind, StmtKind::VarDecl);
  EXPECT_EQ(Outer->Stmts[1]->Kind, StmtKind::While);
}

TEST(Parser, SuperCall) {
  AstModule M = parseOk(R"(
class A extends B {
  def init() { super(1, "x"); }
}
)");
  const auto *S = cast<SuperCallStmt>(M.Classes[0].Methods[0].Body->Stmts[0]);
  EXPECT_EQ(S->Args.size(), 2u);
}

TEST(Parser, VarRequiresInitializer) { parseFails("def f() { var x; }"); }

TEST(Parser, AssignmentTargetValidated) {
  parseFails("def f() { 1 + 2 = 3; }");
}

TEST(Parser, UselessExpressionStatementRejected) {
  parseFails("def f(x: int) { x + 1; }");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Parser, ArithmeticPrecedence) {
  // a + b * c parses as a + (b * c).
  AstModule M = parseExpr("a + b * c");
  const auto *Add = cast<BinaryExpr>(exprOf(M));
  EXPECT_EQ(Add->O, BinaryExpr::Op::Add);
  EXPECT_EQ(Add->LHS->Kind, ExprKind::NameRef);
  const auto *Mul = cast<BinaryExpr>(Add->RHS);
  EXPECT_EQ(Mul->O, BinaryExpr::Op::Mul);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  AstModule M = parseExpr("(a + b) * c");
  const auto *Mul = cast<BinaryExpr>(exprOf(M));
  EXPECT_EQ(Mul->O, BinaryExpr::Op::Mul);
  const auto *Add = cast<BinaryExpr>(Mul->LHS);
  EXPECT_EQ(Add->O, BinaryExpr::Op::Add);
}

TEST(Parser, ComparisonBindsLooserThanAddition) {
  AstModule M = parseExpr("a + 1 < b * 2");
  const auto *Cmp = cast<BinaryExpr>(exprOf(M));
  EXPECT_EQ(Cmp->O, BinaryExpr::Op::Lt);
}

TEST(Parser, LogicalOperatorsShortCircuitShape) {
  AstModule M = parseExpr("a && b || c && d");
  const auto *Or = cast<LogicalExpr>(exprOf(M));
  EXPECT_EQ(Or->O, LogicalExpr::Op::Or);
  EXPECT_EQ(cast<LogicalExpr>(Or->LHS)->O, LogicalExpr::Op::And);
  EXPECT_EQ(cast<LogicalExpr>(Or->RHS)->O, LogicalExpr::Op::And);
}

TEST(Parser, CastVsParenthesizedName) {
  // "(Foo) x" is a cast; "(foo) + x" is a parenthesized name.
  AstModule M1 = parseExpr("(Foo) x");
  EXPECT_EQ(exprOf(M1)->Kind, ExprKind::Cast);

  AstModule M2 = parseExpr("(foo) + x");
  const auto *Add = cast<BinaryExpr>(exprOf(M2));
  EXPECT_EQ(Add->LHS->Kind, ExprKind::NameRef);
}

TEST(Parser, CastOfArrayAndPrimitiveTypes) {
  EXPECT_EQ(exprOf(parseExpr("(string[]) x"))->Kind, ExprKind::Cast);
  EXPECT_EQ(exprOf(parseExpr("(string) x"))->Kind, ExprKind::Cast);
  // Keep the module alive while inspecting nodes inside it.
  AstModule M = parseExpr("(Foo[][]) x");
  const auto *C = cast<CastExpr>(exprOf(M));
  EXPECT_EQ(C->Target.ArrayRank, 2u);
}

TEST(Parser, CastChainsWithPostfix) {
  // ((Vector) v).get(i)
  AstModule M = parseExpr("((Vector) v).get(i)");
  const auto *Call = cast<CallExprAst>(exprOf(M));
  const auto *Callee = cast<FieldAccessExpr>(Call->Callee);
  EXPECT_EQ(Callee->Base->Kind, ExprKind::Cast);
}

TEST(Parser, PostfixChains) {
  AstModule M = parseExpr("a.b.c[i].d(x, y)");
  const auto *Call = cast<CallExprAst>(exprOf(M));
  EXPECT_EQ(Call->Args.size(), 2u);
  const auto *Callee = cast<FieldAccessExpr>(Call->Callee);
  EXPECT_EQ(Callee->Name, "d");
  EXPECT_EQ(Callee->Base->Kind, ExprKind::Index);
}

TEST(Parser, NewForms) {
  EXPECT_EQ(exprOf(parseExpr("new Foo(1, null)"))->Kind,
            ExprKind::NewObject);
  AstModule M1 = parseExpr("new int[10]");
  const auto *NA = cast<NewArrayExpr>(exprOf(M1));
  EXPECT_EQ(NA->ElemType.BaseKind, TypeExprAst::Base::Int);
  // new Foo[n][] makes an array of Foo arrays.
  AstModule M2 = parseExpr("new Foo[n][]");
  const auto *NA2 = cast<NewArrayExpr>(exprOf(M2));
  EXPECT_EQ(NA2->ElemType.ArrayRank, 1u);
}

TEST(Parser, InstanceOf) {
  AstModule M = parseExpr("x instanceof Foo");
  EXPECT_EQ(exprOf(M)->Kind, ExprKind::InstanceOf);
}

TEST(Parser, ReadBuiltins) {
  EXPECT_EQ(exprOf(parseExpr("readLine()"))->Kind, ExprKind::Read);
  EXPECT_EQ(exprOf(parseExpr("readInt()"))->Kind, ExprKind::Read);
}

TEST(Parser, UnaryOperators) {
  AstModule M1 = parseExpr("-x");
  const auto *Neg = cast<UnaryExpr>(exprOf(M1));
  EXPECT_EQ(Neg->O, UnaryExpr::Op::Neg);
  AstModule M2 = parseExpr("!x");
  const auto *Not = cast<UnaryExpr>(exprOf(M2));
  EXPECT_EQ(Not->O, UnaryExpr::Op::Not);
}

//===----------------------------------------------------------------------===//
// Error recovery
//===----------------------------------------------------------------------===//

TEST(Parser, RecoversAcrossBadDeclarations) {
  AstModule M;
  DiagnosticEngine Diag;
  parseModule("class { } def ok() { } class Fine { }", M, Diag);
  EXPECT_TRUE(Diag.hasErrors());
  // The good declarations still parse.
  EXPECT_EQ(M.Functions.size(), 1u);
  bool SawFine = false;
  for (const auto &C : M.Classes)
    SawFine |= C.Name == "Fine";
  EXPECT_TRUE(SawFine);
}

TEST(Parser, ReportsMultipleErrors) {
  AstModule M;
  DiagnosticEngine Diag;
  parseModule("def f() { var = 1; } def g() { if ) } ", M, Diag);
  EXPECT_GE(Diag.errorCount(), 2u);
}

TEST(Parser, FiveDistinctErrorsYieldFiveLocatedDiagnostics) {
  // One file, five independent mistakes, each on its own line. The
  // recovering parser must synchronize at every statement boundary
  // and report all five with positions — not stop at the first.
  const char *Source =
      "def main() {\n"        // line 1
      "  var a = 1\n"         // line 2: missing ';'
      "  var b = 2\n"         // line 3: missing ';'
      "  var c = ;\n"         // line 4: missing initializer expression
      "  a = = 5;\n"          // line 5: bad assignment RHS
      "  print(\"x\")\n"      // line 6: missing ';'
      "  print(\"y\");\n"     // line 7: fine
      "}\n";
  AstModule M;
  DiagnosticEngine Diag;
  EXPECT_FALSE(parseModule(Source, M, Diag));
  EXPECT_EQ(Diag.errorCount(), 5u) << Diag.str();
  std::set<unsigned> Lines;
  for (const Diagnostic &D : Diag.diagnostics())
    Lines.insert(D.Loc.Line);
  EXPECT_EQ(Lines, (std::set<unsigned>{2, 3, 4, 5, 6})) << Diag.str();
}

TEST(Parser, MissingSemicolonDiagnosticCarriesARange) {
  AstModule M;
  DiagnosticEngine Diag;
  parseModule("def f() {\n  var a = 1\n  print(\"x\");\n}\n", M, Diag);
  ASSERT_EQ(Diag.errorCount(), 1u) << Diag.str();
  const Diagnostic &D = Diag.diagnostics().front();
  // The range spans from the statement start to the token where the
  // ';' should have been.
  EXPECT_TRUE(D.hasRange()) << D.str();
  EXPECT_EQ(D.Loc.Line, 2u);
  EXPECT_EQ(D.End.Line, 3u);
}
