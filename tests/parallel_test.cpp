//===-- parallel_test.cpp - Cross-thread-count determinism tests ----------------==//
//
// The hard requirement of the parallel pipeline (DESIGN.md section
// 11): every artifact — points-to sets, mod-ref sets, the SDG, batch
// slices, and the eval tables — is byte-identical for every thread
// count. Each fixture computes full signatures at threads ∈ {1, 2, 8}
// and compares the bytes. The suite carries the "parallel" ctest
// label and runs in the TSL_SANITIZE=thread tree alongside "engine"
// and "pipeline".
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Generator.h"
#include "ir/Program.h"
#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "sdg/SDGDot.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace tsl;

namespace {

const unsigned ThreadCounts[] = {1, 2, 8};

/// Every value-producing statement's merged points-to set plus the
/// call-graph shape, in program order: a full byte signature of one
/// points-to result.
std::string ptaSignature(const Program &P, const PointsToResult &PTA) {
  std::ostringstream OS;
  OS << "objects=" << PTA.objects().size()
     << ";cgnodes=" << PTA.callGraph().nodes().size()
     << ";cgedges=" << PTA.callGraph().edges().size() << "\n";
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        if (!I->dest())
          continue;
        OS << M->id() << ":" << I->loc().Line << ":";
        PTA.pointsTo(I->dest()).forEach([&](unsigned Obj) {
          OS << " " << Obj;
        });
        OS << "\n";
      }
  return OS.str();
}

std::string modrefSignature(const Program &P, const ModRefResult &MR) {
  std::ostringstream OS;
  OS << "partitions=" << MR.numPartitions() << "\n";
  for (const auto &M : P.methods()) {
    OS << M->id() << " mod:";
    MR.modOf(M.get()).forEach([&](unsigned Id) { OS << " " << Id; });
    OS << " ref:";
    MR.refOf(M.get()).forEach([&](unsigned Id) { OS << " " << Id; });
    OS << "\n";
  }
  return OS.str();
}

std::vector<const Instr *> printSeeds(const Program &P) {
  std::vector<const Instr *> Seeds;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seeds.push_back(I.get());
  return Seeds;
}

std::string batchSignature(SliceEngine &E,
                           const std::vector<const Instr *> &Seeds,
                           unsigned Jobs) {
  BatchOptions BO;
  BO.Mode = SliceMode::Thin;
  BO.Jobs = Jobs;
  std::ostringstream OS;
  for (const SliceResult &R : E.sliceBackwardBatch(Seeds, BO)) {
    R.nodeSet().forEach([&](unsigned Node) { OS << Node << " "; });
    OS << "\n";
  }
  return OS.str();
}

/// One full pipeline pass at a given thread count, reduced to bytes.
struct PipelineSignature {
  std::string Pta, ModRef, Sdg, Slices;
};

PipelineSignature signatureAt(const std::string &Source, unsigned Threads) {
  AnalysisSession S(Source);
  S.setThreads(Threads);
  Program *P = S.program();
  EXPECT_NE(P, nullptr) << S.diagnostics().str();
  PipelineSignature Sig;
  Sig.Pta = ptaSignature(*P, *S.pointsTo());
  Sig.ModRef = modrefSignature(*P, *S.modRef());
  Sig.Sdg = exportDot(*S.sdg());
  Sig.Slices = batchSignature(*S.engine(), printSeeds(*P), Threads);
  return Sig;
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const std::string Source = generateRandomProgram(GetParam());
  PipelineSignature Base = signatureAt(Source, ThreadCounts[0]);
  ASSERT_FALSE(Base.Pta.empty());
  ASSERT_FALSE(Base.Sdg.empty());
  for (unsigned I = 1; I != std::size(ThreadCounts); ++I) {
    PipelineSignature Other = signatureAt(Source, ThreadCounts[I]);
    EXPECT_EQ(Base.Pta, Other.Pta) << "threads=" << ThreadCounts[I];
    EXPECT_EQ(Base.ModRef, Other.ModRef) << "threads=" << ThreadCounts[I];
    EXPECT_EQ(Base.Sdg, Other.Sdg) << "threads=" << ThreadCounts[I];
    EXPECT_EQ(Base.Slices, Other.Slices) << "threads=" << ThreadCounts[I];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Values(3u, 7u, 23u));

// The context-sensitive cone too: heap formal/actual wiring consumes
// the mod-ref sets the parallel SCC waves computed.
TEST(ParallelDeterminism, ContextSensitiveSdgIsByteIdentical) {
  const std::string Source = generateRandomProgram(11);
  std::string Base;
  for (unsigned Threads : ThreadCounts) {
    AnalysisSession S(Source);
    S.setThreads(Threads);
    ASSERT_NE(S.program(), nullptr);
    SDGOptions SO;
    SO.ContextSensitive = true;
    S.setSDGOptions(SO);
    std::string Dot = exportDot(*S.sdg());
    if (Base.empty())
      Base = Dot;
    else
      EXPECT_EQ(Base, Dot) << "threads=" << Threads;
  }
}

// The parallel-frontier points-to mode: byte-identical for every pool
// size (none, 2, 8). Its round-granularity visit order is a different
// (equivalent) id assignment than the sequential per-pop loop, which
// is why PTAOptions::ParallelFrontier participates in the session
// digest — here we assert the pool size does NOT matter.
TEST(ParallelDeterminism, ParallelFrontierSolverIsPoolSizeInvariant) {
  DiagnosticEngine Diag;
  const std::string Source = generateRandomProgram(5);
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();

  std::string Base;
  for (unsigned Threads : ThreadCounts) {
    std::unique_ptr<ThreadPool> Pool;
    if (Threads > 1)
      Pool = std::make_unique<ThreadPool>(Threads);
    PTAOptions Opts;
    Opts.ParallelFrontier = true;
    Opts.Pool = Pool.get();
    std::unique_ptr<PointsToResult> PTA = runPointsTo(*P, Opts);
    std::ostringstream OS;
    OS << ptaSignature(*P, *PTA);
    const SolverStats &St = PTA->stats();
    OS << "pops=" << St.WorklistPops << ";props=" << St.Propagations
       << ";nochange=" << St.NoChangePropagations
       << ";cycles=" << St.CyclesCollapsed << ";merged=" << St.NodesMerged;
    if (Base.empty())
      Base = OS.str();
    else
      EXPECT_EQ(Base, OS.str()) << "threads=" << Threads;
  }
}

// Both solver modes must agree on everything observable at the source
// level: slices do not mention visit-order ids, so the thin slices of
// every print statement must match line-for-line.
TEST(ParallelDeterminism, ParallelFrontierSlicesMatchSequentialSolver) {
  const std::string Source = generateRandomProgram(13);
  std::string Sigs[2];
  for (int PF = 0; PF != 2; ++PF) {
    AnalysisSession S(Source);
    ASSERT_NE(S.program(), nullptr);
    PTAOptions PO;
    PO.ParallelFrontier = PF != 0;
    S.setPTAOptions(PO);
    std::ostringstream OS;
    for (const Instr *Seed : printSeeds(*S.program())) {
      const SliceResult *R = S.sliceBackwardCached(Seed, SliceMode::Thin);
      ASSERT_NE(R, nullptr);
      // Sorted: sourceLines() follows node-id order, and the two
      // solver modes assign different (equivalent) ids.
      std::vector<unsigned> Lines;
      for (const SourceLine &L : R->sourceLines())
        Lines.push_back(L.Line);
      std::sort(Lines.begin(), Lines.end());
      for (unsigned L : Lines)
        OS << L << " ";
      OS << "\n";
    }
    Sigs[PF] = OS.str();
  }
  EXPECT_EQ(Sigs[0], Sigs[1]);
}

// Eval tables: the paper-table drivers run their whole pipeline under
// the configured thread count; the rendered bytes must not move.
TEST(ParallelDeterminism, DebuggingTableBytesAreThreadCountInvariant) {
  std::string Base;
  for (unsigned Threads : ThreadCounts) {
    resetEvalSessions();
    setEvalThreads(Threads);
    std::string Table =
        formatInspectionTable("Table 2", runDebuggingExperiment());
    if (Base.empty())
      Base = Table;
    else
      EXPECT_EQ(Base, Table) << "threads=" << Threads;
  }
  resetEvalSessions();
  setEvalThreads(1);
}

// A one-item batch must never touch a pool: no pool is created, no
// thread spawned, whatever Jobs says (the engine clamps workers to
// the item count and runs inline).
TEST(ParallelEngine, SingleItemBatchSpawnsNoPool) {
  DiagnosticEngine Diag;
  const std::string Source = generateRandomProgram(3);
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P);
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr);

  std::vector<const Instr *> Seeds = printSeeds(*P);
  ASSERT_FALSE(Seeds.empty());

  SliceEngine E(*G);
  ASSERT_EQ(E.pool(), nullptr);
  BatchOptions BO;
  BO.Jobs = 8; // Eight requested; one item -> inline, still no pool.
  E.sliceBackwardBatch({Seeds.front()}, BO);
  EXPECT_EQ(E.pool(), nullptr);
  EXPECT_EQ(E.stats().Workers, 1u);

  // The control making the assertion above meaningful: a batch with
  // more than one work item at Jobs > 1 does create a pool. CI mode
  // chunks 64 queries per item, so use the context-sensitive engine,
  // where every unique seed is its own item.
  if (Seeds.size() > 1) {
    ModRefResult MR(*P, *PTA);
    SDGOptions SO;
    SO.ContextSensitive = true;
    std::unique_ptr<SDG> CSG = buildSDG(*P, *PTA, &MR, SO);
    SliceEngine CSE(*CSG);
    BO.ContextSensitive = true;
    BO.Jobs = 2;
    CSE.sliceBackwardBatch(Seeds, BO);
    ASSERT_GT(CSE.stats().UniqueQueries, 1u);
    EXPECT_NE(CSE.pool(), nullptr);
  }
}

// An injected shared pool is adopted, not wrapped: the engine must
// use exactly the session pool instance.
TEST(ParallelEngine, AdoptsTheInjectedSessionPool) {
  const std::string Source = generateRandomProgram(7);
  AnalysisSession S(Source);
  S.setThreads(4);
  ASSERT_NE(S.program(), nullptr);
  SliceEngine *E = S.engine();
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->pool(), S.pool());
}

} // namespace
