//===-- snapshot_test.cpp - Snapshot-vs-cold differential suite -----------------==//
//
// The contract of the persistent-snapshot layer (DESIGN.md section
// 14): a session warm-started by loadSnapshot() answers every query
// byte-identically to a cold session compiled from the same source
// with the same options. The differential grid runs {context-
// insensitive, context-sensitive} x threads {1, 4}, compares
// canonical artifact signatures (points-to, mod-ref, rendered
// slices), and checks that warm-start composes with incremental
// edits and with the content-addressed cache directory
// (hit/miss/evict).
//
// The suite carries the "snapshot" ctest label: the
// TSL_SANITIZE=address and TSL_SANITIZE=thread trees run it
// (`ctest -L snapshot`), so decode-by-replay and the pointer-free
// row tables are also leak- and race-checked.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tsl;

namespace fs = std::filesystem;

namespace {

/// Exercises every serialized layer: heap flow through a field, a
/// container-like double indirection, a two-function SCC, a downcast,
/// and several print seeds.
const char *BaseSource = R"(
class Cell {
  var v: int;
}
class Box {
  var c: Cell;
}
def put(c: Cell, x: int) {
  c.v = x;
}
def even(n: int): int {
  if (n < 1) { return 1; }
  return odd(n - 1);
}
def odd(n: int): int {
  if (n < 1) { return 0; }
  return even(n - 1);
}
def main() {
  var a = new Cell();
  var b = new Box();
  b.c = a;
  put(b.c, readInt());
  var o: Object = b;
  var back = (Box) o;
  var k = even(readInt());
  print(a.v);
  print(back.c.v);
  print(k);
}
)";

std::string replaced(std::string Src, const std::string &Old,
                     const std::string &New) {
  const std::size_t At = Src.find(Old);
  EXPECT_NE(At, std::string::npos) << Old;
  if (At != std::string::npos)
    Src.replace(At, Old.size(), New);
  return Src;
}

/// Canonical name of an abstract object: allocation-site position and
/// context depth (object ids may be permuted between builds; source
/// positions are not).
std::string objName(const PointsToResult &PTA, unsigned Obj) {
  const AbstractObject &O = PTA.objects()[Obj];
  std::ostringstream OS;
  OS << "L" << (O.Site ? O.Site->loc().Line : 0) << "C"
     << (O.Site ? O.Site->loc().Col : 0) << "D" << O.CtxDepth;
  return OS.str();
}

std::string ptaSignature(const Program &P, const PointsToResult &PTA) {
  std::ostringstream OS;
  OS << "cgnodes=" << PTA.callGraph().nodes().size()
     << ";cgedges=" << PTA.callGraph().edges().size() << "\n";
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs()) {
        if (!I->dest())
          continue;
        std::vector<std::string> Pts;
        PTA.pointsTo(I->dest()).forEach(
            [&](unsigned Obj) { Pts.push_back(objName(PTA, Obj)); });
        std::sort(Pts.begin(), Pts.end());
        OS << M->qualifiedName(P.strings()) << ":" << I->loc().Line << ":"
           << I->loc().Col << " =";
        for (const std::string &N : Pts)
          OS << " " << N;
        OS << "\n";
      }
  return OS.str();
}

std::string modrefSignature(const Program &P, const ModRefResult &MR) {
  std::ostringstream OS;
  auto Render = [&](const BitSet &Set) {
    std::vector<std::string> Names;
    Set.forEach([&](unsigned Id) { Names.push_back(MR.partitionName(Id, P)); });
    std::sort(Names.begin(), Names.end());
    for (const std::string &N : Names)
      OS << " " << N;
  };
  for (const auto &M : P.methods()) {
    OS << M->qualifiedName(P.strings()) << " mod:";
    Render(MR.modOf(M.get()));
    OS << " ref:";
    Render(MR.refOf(M.get()));
    OS << "\n";
  }
  return OS.str();
}

std::vector<const Instr *> printSeeds(const Program &P) {
  std::vector<const Instr *> Seeds;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (isa<PrintInstr>(I.get()))
          Seeds.push_back(I.get());
  return Seeds;
}

std::string renderSlice(const SliceResult &R, const Program &P) {
  std::string Out = std::to_string(R.sizeStmts()) + "|";
  for (const SourceLine &L : R.sourceLines()) {
    Out += L.M->qualifiedName(P.strings());
    Out += ':';
    Out += std::to_string(L.Line);
    Out += ';';
  }
  return Out;
}

/// The full observable surface of one session under its CURRENT
/// options (the SDG mode is not toggled here: the suite compares a
/// warm-started session against a cold one per mode, so the loaded
/// SDG itself is what answers).
std::string sessionSignature(AnalysisSession &S) {
  Program *P = S.program();
  EXPECT_NE(P, nullptr) << S.diagnostics().str();
  if (!P)
    return "<compile failed>";
  std::ostringstream OS;
  OS << ptaSignature(*P, *S.pointsTo());
  OS << modrefSignature(*P, *S.modRef());
  for (const Instr *Seed : printSeeds(*P))
    for (SliceMode Mode : {SliceMode::Thin, SliceMode::Traditional}) {
      const SliceResult *R = S.sliceBackwardCached(Seed, Mode);
      EXPECT_NE(R, nullptr);
      OS << Seed->loc().Line << (Mode == SliceMode::Thin ? "t|" : "T|")
         << (R ? renderSlice(*R, *P) : "<null>") << "\n";
    }
  return OS.str();
}

std::string tempPath(const std::string &Name) {
  return (fs::temp_directory_path() / Name).string();
}

std::string readBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// (ContextSensitive, Threads) grid point.
class SnapshotDifferential
    : public ::testing::TestWithParam<std::tuple<bool, unsigned>> {};

void applyOptions(AnalysisSession &S, bool CS, unsigned Threads) {
  S.setThreads(Threads);
  SDGOptions SO;
  SO.ContextSensitive = CS;
  S.setSDGOptions(SO);
}

} // namespace

TEST_P(SnapshotDifferential, LoadIsByteIdenticalToColdRebuild) {
  const bool CS = std::get<0>(GetParam());
  const unsigned Threads = std::get<1>(GetParam());
  const std::string Snap = tempPath(
      std::string("tsl_snapshot_diff_") + (CS ? "cs" : "ci") +
      std::to_string(Threads) + ".tslsnap");

  AnalysisSession Cold{std::string(BaseSource)};
  applyOptions(Cold, CS, Threads);
  const std::string Reference = sessionSignature(Cold);
  ASSERT_FALSE(Reference.empty());

  AnalysisSession Saver{std::string(BaseSource)};
  applyOptions(Saver, CS, Threads);
  ASSERT_TRUE(Saver.saveSnapshot(Snap).isOk()) << Saver.lastError().str();
  EXPECT_EQ(Saver.snapshotStats().Saves, 1u);

  AnalysisSession Warm{std::string(BaseSource)};
  applyOptions(Warm, CS, Threads);
  ASSERT_TRUE(Warm.loadSnapshot(Snap).isOk());
  EXPECT_EQ(Warm.snapshotStats().Loads, 1u);
  EXPECT_EQ(Warm.snapshotStats().Fallbacks, 0u);
  EXPECT_EQ(sessionSignature(Warm), Reference);

  // The saver's own signature matches too (saving must not perturb).
  EXPECT_EQ(sessionSignature(Saver), Reference);
  fs::remove(Snap);
}

TEST_P(SnapshotDifferential, ResaveOfLoadedSessionIsByteIdentical) {
  // encode(decode(x)) == x: the snapshot of a warm-started session is
  // the same byte string as the snapshot it was started from — the
  // canonical-order encoders leak no container iteration order.
  const bool CS = std::get<0>(GetParam());
  const unsigned Threads = std::get<1>(GetParam());
  const std::string SnapA = tempPath(
      std::string("tsl_snapshot_rt_a_") + (CS ? "cs" : "ci") +
      std::to_string(Threads) + ".tslsnap");
  const std::string SnapB = tempPath(
      std::string("tsl_snapshot_rt_b_") + (CS ? "cs" : "ci") +
      std::to_string(Threads) + ".tslsnap");

  AnalysisSession Saver{std::string(BaseSource)};
  applyOptions(Saver, CS, Threads);
  ASSERT_TRUE(Saver.saveSnapshot(SnapA).isOk()) << Saver.lastError().str();

  AnalysisSession Warm{std::string(BaseSource)};
  applyOptions(Warm, CS, Threads);
  ASSERT_TRUE(Warm.loadSnapshot(SnapA).isOk());
  ASSERT_TRUE(Warm.saveSnapshot(SnapB).isOk()) << Warm.lastError().str();

  EXPECT_EQ(readBytes(SnapA), readBytes(SnapB));
  fs::remove(SnapA);
  fs::remove(SnapB);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnapshotDifferential,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<bool, unsigned>> &Info) {
      return std::string(std::get<0>(Info.param) ? "CS" : "CI") + "Threads" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(SnapshotIncremental, LoadThenEditEqualsColdThenEdit) {
  // Warm-start composes with the incremental layer: a session that
  // loads a snapshot and then applies a body edit answers exactly
  // like a session that built cold and applied the same edit (the
  // snapshot's pure-lookup points-to declines in-place update and
  // rebuilds cold — soundness first).
  const std::string Snap = tempPath("tsl_snapshot_edit.tslsnap");
  const std::string Edited =
      replaced(BaseSource, "  c.v = x;", "  var d = c;\n  d.v = x + 1 - 1;");

  AnalysisSession Saver{std::string(BaseSource)};
  ASSERT_TRUE(Saver.saveSnapshot(Snap).isOk()) << Saver.lastError().str();

  AnalysisSession ColdEdit{std::string(BaseSource)};
  ColdEdit.setIncremental(true);
  ASSERT_NE(ColdEdit.program(), nullptr);
  ColdEdit.setSource(Edited);
  const std::string Reference = sessionSignature(ColdEdit);

  AnalysisSession Warm{std::string(BaseSource)};
  Warm.setIncremental(true);
  ASSERT_TRUE(Warm.loadSnapshot(Snap).isOk());
  Warm.setSource(Edited);
  EXPECT_EQ(sessionSignature(Warm), Reference);

  // And against a fully cold session on the edited source.
  AnalysisSession ColdFresh{Edited};
  EXPECT_EQ(sessionSignature(ColdFresh), Reference);
  fs::remove(Snap);
}

TEST(SnapshotBudget, BudgetedSessionsRefuseToSerialize) {
  AnalysisBudget B;
  B.BudgetMs = 60'000;
  B.start();
  AnalysisSession S{std::string(BaseSource)};
  S.setBudget(&B);
  Status St = S.saveSnapshot(tempPath("tsl_snapshot_budget.tslsnap"));
  EXPECT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), StatusCode::ResourceExhausted) << St.str();
  EXPECT_EQ(S.snapshotStats().Saves, 0u);
}

//===----------------------------------------------------------------------===//
// Content-addressed cache directory: miss, hit, evict
//===----------------------------------------------------------------------===//

namespace {

struct CacheDirGuard {
  explicit CacheDirGuard(std::string P) : Path(std::move(P)) {
    fs::remove_all(Path);
  }
  ~CacheDirGuard() { fs::remove_all(Path); }
  std::size_t entries() const {
    if (!fs::exists(Path))
      return 0;
    std::size_t N = 0;
    for (const auto &E : fs::directory_iterator(Path))
      if (E.path().extension() == ".tslsnap")
        ++N;
    return N;
  }
  std::string Path;
};

} // namespace

TEST(SnapshotCacheDir, MissPopulatesThenHitWarmStarts) {
  CacheDirGuard Dir(tempPath("tsl_snapshot_cache_hitmiss"));

  AnalysisSession First{std::string(BaseSource)};
  First.setCacheDir(Dir.Path);
  EXPECT_FALSE(First.tryLoadFromCacheDir());
  EXPECT_EQ(First.snapshotStats().CacheMisses, 1u);
  const std::string Reference = sessionSignature(First);
  ASSERT_TRUE(First.saveToCacheDir().isOk()) << First.lastError().str();
  EXPECT_EQ(First.snapshotStats().Saves, 1u);
  EXPECT_EQ(Dir.entries(), 1u);

  AnalysisSession Second{std::string(BaseSource)};
  Second.setCacheDir(Dir.Path);
  EXPECT_TRUE(Second.tryLoadFromCacheDir());
  EXPECT_EQ(Second.snapshotStats().CacheHits, 1u);
  EXPECT_EQ(Second.snapshotStats().Loads, 1u);
  EXPECT_EQ(sessionSignature(Second), Reference);

  // A different option digest is a miss, never a wrong-config hit.
  AnalysisSession Other{std::string(BaseSource)};
  Other.setCacheDir(Dir.Path);
  PTAOptions PO;
  PO.ObjSensContainers = false;
  Other.setPTAOptions(PO);
  EXPECT_FALSE(Other.tryLoadFromCacheDir());
  EXPECT_EQ(Other.snapshotStats().CacheMisses, 1u);
}

TEST(SnapshotCacheDir, EvictionKeepsTheNewestEntries) {
  CacheDirGuard Dir(tempPath("tsl_snapshot_cache_evict"));
  const std::size_t Max = AnalysisSession::MaxCacheDirEntries;

  // One tiny distinct program per entry, two past the cap.
  uint64_t Evictions = 0;
  for (std::size_t I = 0; I != Max + 2; ++I) {
    AnalysisSession S{"def main() { print(" + std::to_string(I + 1) +
                      "); }\n"};
    S.setCacheDir(Dir.Path);
    EXPECT_FALSE(S.tryLoadFromCacheDir());
    ASSERT_TRUE(S.saveToCacheDir().isOk()) << S.lastError().str();
    Evictions += S.snapshotStats().CacheEvictions;
  }
  EXPECT_EQ(Dir.entries(), Max);
  EXPECT_EQ(Evictions, 2u);

  // The newest entry survived the eviction and still hits.
  AnalysisSession S{"def main() { print(" + std::to_string(Max + 2) +
                    "); }\n"};
  S.setCacheDir(Dir.Path);
  EXPECT_TRUE(S.tryLoadFromCacheDir());
}
