//===-- session_test.cpp - AnalysisSession memoization tests --------------------==//
//
// The pipeline-layer contract (pipeline/Session.h): artifact identity
// on repeated requests, invalidation of exactly the downstream cone on
// option changes (with warm retention of the previous variant), a full
// reset on source replacement, and budget degradation identical to the
// hand-built one-shot pipeline. The suite carries the "pipeline" ctest
// label: like "engine", it runs under the TSL_SANITIZE=address and
// TSL_SANITIZE=thread trees (session-owned engines fan batches across
// worker pools over graphs the session keeps warm).
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

using namespace tsl;

namespace {

/// A small program with a call, heap flow through a field and an
/// array, and a downcast, so every stage (points-to, mod-ref, SDG,
/// slicing) has real work to do.
const char *Source = R"(
class Cell { var v: int; }
def store(c: Cell, x: int) {
  c.v = x;
}
def main() {
  var c = new Cell();
  var box: Object[] = new Object[2];
  store(c, readInt());
  box[0] = c;
  var got = (Cell) box[0];
  print(got.v);
}
)";

PTAOptions noObjOptions() {
  PTAOptions O;
  O.ObjSensContainers = false;
  return O;
}

SDGOptions csOptions() {
  SDGOptions O;
  O.ContextSensitive = true;
  return O;
}

uint64_t hitsOf(const AnalysisSession &S, SessionStage St) {
  return S.stageReports()[static_cast<unsigned>(St)].CacheHits;
}

uint64_t missesOf(const AnalysisSession &S, SessionStage St) {
  return S.stageReports()[static_cast<unsigned>(St)].CacheMisses;
}

uint64_t invalidatedOf(const AnalysisSession &S, SessionStage St) {
  return S.stageReports()[static_cast<unsigned>(St)].CacheInvalidated;
}

/// Outcome equality: Status/Reason/Fallback/StepsUsed. Seconds is wall
/// time and legitimately differs between two runs of the same work, so
/// StageReport::str() is not byte-comparable.
void expectSameOutcome(const StageReport &Got, const StageReport &Want) {
  EXPECT_EQ(Got.Stage, Want.Stage);
  EXPECT_EQ(Got.Status, Want.Status) << Got.Stage;
  EXPECT_EQ(Got.Reason, Want.Reason) << Got.Stage;
  EXPECT_EQ(Got.Fallback, Want.Fallback) << Got.Stage;
  EXPECT_EQ(Got.StepsUsed, Want.StepsUsed) << Got.Stage;
}

std::vector<unsigned> lineNumbers(const SliceResult &S) {
  std::vector<unsigned> Out;
  for (const SourceLine &L : S.sourceLines())
    Out.push_back(L.Line);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// (a) Artifact identity on repeated requests
//===----------------------------------------------------------------------===//

TEST(Session, RepeatedRequestsReturnTheIdenticalArtifact) {
  AnalysisSession S(Source);
  Program *P1 = S.program();
  ASSERT_NE(P1, nullptr) << S.diagnostics().str();
  PointsToResult *Pta1 = S.pointsTo();
  SDG *G1 = S.sdg();
  SliceEngine *E1 = S.engine();

  EXPECT_EQ(S.program(), P1);
  EXPECT_EQ(S.pointsTo(), Pta1);
  EXPECT_EQ(S.sdg(), G1);
  EXPECT_EQ(S.engine(), E1);

  // Each stage computed exactly once; the second round was all hits.
  for (SessionStage St : {SessionStage::Compile, SessionStage::PTA,
                          SessionStage::SDGBuild, SessionStage::Engine}) {
    EXPECT_EQ(missesOf(S, St), 1u) << sessionStageName(St);
    EXPECT_GE(hitsOf(S, St), 1u) << sessionStageName(St);
  }
}

TEST(Session, SliceQueriesAreMemoizedPerSeedAndMode) {
  AnalysisSession S(Source);
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  const Instr *Seed = instrAtLine(*S.program(), 12); // print(got.v)
  ASSERT_NE(Seed, nullptr);

  const SliceResult *R1 = S.sliceBackwardCached(Seed, SliceMode::Thin);
  ASSERT_NE(R1, nullptr);
  EXPECT_EQ(S.sliceBackwardCached(Seed, SliceMode::Thin), R1);
  EXPECT_EQ(hitsOf(S, SessionStage::Slice), 1u);
  EXPECT_EQ(missesOf(S, SessionStage::Slice), 1u);

  // A different mode is a different query.
  const SliceResult *R2 = S.sliceBackwardCached(Seed, SliceMode::Traditional);
  ASSERT_NE(R2, nullptr);
  EXPECT_NE(R2, R1);
  EXPECT_EQ(missesOf(S, SessionStage::Slice), 2u);
  EXPECT_GE(R2->sizeStmts(), R1->sizeStmts());
}

//===----------------------------------------------------------------------===//
// (b) Option changes invalidate exactly the downstream cone
//===----------------------------------------------------------------------===//

TEST(Session, PtaOptionChangeKeepsTheProgramAndRetainsBothVariants) {
  AnalysisSession S(Source);
  Program *P = S.program();
  ASSERT_NE(P, nullptr) << S.diagnostics().str();
  PointsToResult *Obj = S.pointsTo();
  SDG *ObjG = S.sdg();
  uint64_t CompileEpoch = S.epoch(SessionStage::Compile);
  uint64_t PtaEpoch = S.epoch(SessionStage::PTA);
  uint64_t SliceEpoch = S.epoch(SessionStage::Slice);

  S.setPTAOptions(noObjOptions());
  // Downstream cone bumped, compile untouched.
  EXPECT_EQ(S.epoch(SessionStage::Compile), CompileEpoch);
  EXPECT_EQ(S.epoch(SessionStage::PTA), PtaEpoch + 1);
  EXPECT_EQ(S.epoch(SessionStage::Slice), SliceEpoch + 1);

  // The program is reused; the PTA and SDG are new variants.
  EXPECT_EQ(S.program(), P);
  PointsToResult *NoObj = S.pointsTo();
  EXPECT_NE(NoObj, Obj);
  EXPECT_NE(S.sdg(), ObjG);

  // Re-keying retains the old variant: switching back is a cache hit,
  // not a rebuild, and nothing was destroyed along the way.
  S.setPTAOptions(PTAOptions());
  EXPECT_EQ(S.pointsTo(), Obj);
  EXPECT_EQ(S.sdg(), ObjG);
  EXPECT_EQ(missesOf(S, SessionStage::PTA), 2u);
  EXPECT_EQ(invalidatedOf(S, SessionStage::PTA), 0u);
}

TEST(Session, SdgOptionChangeReusesThePointsToRun) {
  AnalysisSession S(Source);
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  PointsToResult *Pta = S.pointsTo();
  SDG *CI = S.sdg();
  uint64_t PtaEpoch = S.epoch(SessionStage::PTA);
  uint64_t SdgEpoch = S.epoch(SessionStage::SDGBuild);

  // CI -> CS: the points-to run (and its epoch) survive; only the
  // SDG..Slice cone re-keys.
  S.setSDGOptions(csOptions());
  EXPECT_EQ(S.epoch(SessionStage::PTA), PtaEpoch);
  EXPECT_EQ(S.epoch(SessionStage::SDGBuild), SdgEpoch + 1);
  SDG *CS = S.sdg();
  ASSERT_NE(CS, nullptr);
  EXPECT_NE(CS, CI);
  EXPECT_GT(CS->numHeapParamNodes(), 0u);
  EXPECT_EQ(S.pointsTo(), Pta);
  EXPECT_EQ(missesOf(S, SessionStage::PTA), 1u);

  // And back: the CI graph is still warm.
  S.setSDGOptions(SDGOptions());
  EXPECT_EQ(S.sdg(), CI);
  EXPECT_EQ(missesOf(S, SessionStage::SDGBuild), 2u);
}

TEST(Session, NoOpOptionSetDoesNotInvalidate) {
  AnalysisSession S(Source);
  SDG *G = S.sdg();
  ASSERT_NE(G, nullptr);
  uint64_t SdgEpoch = S.epoch(SessionStage::SDGBuild);
  S.setPTAOptions(PTAOptions());
  S.setSDGOptions(SDGOptions());
  EXPECT_EQ(S.epoch(SessionStage::SDGBuild), SdgEpoch);
  EXPECT_EQ(S.sdg(), G);
}

//===----------------------------------------------------------------------===//
// (c) Source replacement resets everything
//===----------------------------------------------------------------------===//

TEST(Session, SourceReplacementDestroysEveryArtifact) {
  AnalysisSession S(Source);
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  S.sdg();
  S.engine();
  const Instr *Seed = instrAtLine(*S.program(), 12);
  S.sliceBackwardCached(Seed, SliceMode::Thin);

  uint64_t Epochs[NumSessionStages];
  for (unsigned I = 0; I != NumSessionStages; ++I)
    Epochs[I] = S.epoch(static_cast<SessionStage>(I));

  S.setSource("def main() { print(1); }");

  // Every stage epoch bumped, every cached artifact counted destroyed
  // (mod-ref was never computed — the CI build does not need it).
  for (unsigned I = 0; I != NumSessionStages; ++I)
    EXPECT_EQ(S.epoch(static_cast<SessionStage>(I)), Epochs[I] + 1)
        << sessionStageName(static_cast<SessionStage>(I));
  for (SessionStage St :
       {SessionStage::Compile, SessionStage::PTA, SessionStage::SDGBuild,
        SessionStage::Engine, SessionStage::Slice})
    EXPECT_EQ(invalidatedOf(S, St), 1u) << sessionStageName(St);
  EXPECT_EQ(invalidatedOf(S, SessionStage::ModRef), 0u);

  // The session recompiles the new source on demand.
  Program *P = S.program();
  ASSERT_NE(P, nullptr) << S.diagnostics().str();
  EXPECT_EQ(missesOf(S, SessionStage::Compile), 2u);
  EXPECT_NE(S.sdg(), nullptr);
}

TEST(Session, CompileFailureIsMemoizedAndRecoverable) {
  AnalysisSession S("def main() { this does not parse }");
  EXPECT_EQ(S.program(), nullptr);
  EXPECT_FALSE(S.diagnostics().str().empty());
  EXPECT_EQ(S.sdg(), nullptr);
  // The failed compile is cached, not retried.
  EXPECT_EQ(S.program(), nullptr);
  EXPECT_EQ(missesOf(S, SessionStage::Compile), 1u);

  S.setSource("def main() { print(1); }");
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  const Instr *Seed = instrAtLine(*S.program(), 1);
  ASSERT_NE(Seed, nullptr);
  EXPECT_NE(S.sliceBackwardCached(Seed, SliceMode::Thin), nullptr);
}

//===----------------------------------------------------------------------===//
// (d) Budget exhaustion degrades identically to the one-shot pipeline
//===----------------------------------------------------------------------===//

TEST(Session, BudgetedSdgDegradesLikeOneShot) {
  // A deterministic step cap (no wall clock): the SDG node budget
  // trips on this program in both pipelines.
  AnalysisBudget B;
  B.MaxSdgNodes = 4;
  B.start();

  // The hand-built one-shot pipeline, budget threaded by hand exactly
  // as tools/thinslice.cpp does for a single query.
  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  PTAOptions PO;
  PO.Budget = &B;
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P, PO);
  SDGOptions SO;
  SO.Budget = &B;
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr, SO);
  ASSERT_TRUE(G->report().degraded());

  AnalysisSession S(Source);
  S.setBudget(&B);
  SDG *GS = S.sdg();
  ASSERT_NE(GS, nullptr);
  expectSameOutcome(GS->report(), G->report());
  EXPECT_EQ(GS->numStmtNodes(), G->numStmtNodes());
  EXPECT_EQ(GS->numEdges(), G->numEdges());
  expectSameOutcome(S.pointsTo()->report(), PTA->report());

  // The governed status block the CLI prints is assembled identically.
  PipelineStatus OneShot;
  OneShot.add(PTA->report());
  OneShot.add(G->report());
  PipelineStatus FromSession = S.status();
  ASSERT_EQ(FromSession.Stages.size(), OneShot.Stages.size());
  for (std::size_t I = 0; I != OneShot.Stages.size(); ++I)
    expectSameOutcome(FromSession.Stages[I], OneShot.Stages[I]);
  EXPECT_EQ(FromSession.complete(), OneShot.complete());
}

TEST(Session, BudgetedSliceDegradesLikeOneShotBatch) {
  AnalysisBudget B;
  B.MaxSlicePops = 2;
  B.start();

  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  ASSERT_NE(P, nullptr) << Diag.str();
  PTAOptions PO;
  PO.Budget = &B;
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P, PO);
  SDGOptions SO;
  SO.Budget = &B;
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, nullptr, SO);
  const Instr *SeedOne = instrAtLine(*P, 12);
  ASSERT_NE(SeedOne, nullptr);
  SliceEngine Eng(*G);
  BatchOptions BO;
  BO.Mode = SliceMode::Thin;
  BO.Budget = &B;
  SliceResult OneShot = Eng.sliceBackwardBatch({SeedOne}, BO).front();
  ASSERT_FALSE(OneShot.complete());

  AnalysisSession S(Source);
  S.setBudget(&B);
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  const Instr *SeedSess = instrAtLine(*S.program(), 12);
  const SliceResult *Sess = S.sliceBackwardCached(SeedSess, SliceMode::Thin);
  ASSERT_NE(Sess, nullptr);
  EXPECT_EQ(Sess->complete(), OneShot.complete());
  EXPECT_EQ(Sess->degradedReason(), OneShot.degradedReason());
  EXPECT_EQ(Sess->sizeStmts(), OneShot.sizeStmts());
  EXPECT_EQ(lineNumbers(*Sess), lineNumbers(OneShot));
}

TEST(Session, BudgetChangeDestroysAnalysesButKeepsTheProgram) {
  AnalysisSession S(Source);
  Program *P = S.program();
  ASSERT_NE(P, nullptr) << S.diagnostics().str();
  ASSERT_NE(S.sdg(), nullptr);
  uint64_t CompileEpoch = S.epoch(SessionStage::Compile);

  AnalysisBudget B;
  B.MaxSdgNodes = 4;
  B.start();
  S.setBudget(&B);

  // Cached analyses embed the budget outcome they were computed under,
  // so they are destroyed (not re-keyed); compilation is ungoverned
  // and survives.
  EXPECT_EQ(S.epoch(SessionStage::Compile), CompileEpoch);
  EXPECT_EQ(invalidatedOf(S, SessionStage::PTA), 1u);
  EXPECT_EQ(invalidatedOf(S, SessionStage::SDGBuild), 1u);
  EXPECT_EQ(S.program(), P);
  ASSERT_NE(S.sdg(), nullptr);
  EXPECT_TRUE(S.sdg()->report().degraded());

  // Clearing the budget invalidates again; the complete artifacts come
  // back.
  S.setBudget(nullptr);
  ASSERT_NE(S.sdg(), nullptr);
  EXPECT_FALSE(S.sdg()->report().degraded());
}

//===----------------------------------------------------------------------===//
// Warm-session batched slicing (the thread-sanitizer target)
//===----------------------------------------------------------------------===//

TEST(Session, MultiWorkerBatchesOnOneWarmSession) {
  WorkloadProgram W =
      padWorkload(debuggingCases().front().Prog, "SS", /*PadClasses=*/2,
                  /*MethodsPerClass=*/4);
  AnalysisSession S(W.Source);
  ASSERT_NE(S.program(), nullptr) << S.diagnostics().str();
  std::vector<const Instr *> Seeds = collectSliceSeeds(*S.program(), 16);
  ASSERT_FALSE(Seeds.empty());

  SliceEngine *E = S.engine();
  ASSERT_NE(E, nullptr);
  BatchOptions BO;
  BO.Mode = SliceMode::Thin;
  BO.Jobs = 4;
  std::vector<SliceResult> First = E->sliceBackwardBatch(Seeds, BO);
  // Same warm engine again, across its worker pool: the session hands
  // out the identical engine and the results are reproducible.
  ASSERT_EQ(S.engine(), E);
  std::vector<SliceResult> Second = E->sliceBackwardBatch(Seeds, BO);
  ASSERT_EQ(First.size(), Second.size());
  for (std::size_t I = 0; I != First.size(); ++I)
    EXPECT_TRUE(First[I].nodeSet() == Second[I].nodeSet()) << I;
  EXPECT_EQ(missesOf(S, SessionStage::Engine), 1u);
}

//===----------------------------------------------------------------------===//
// The eval drivers ride the session registry unchanged
//===----------------------------------------------------------------------===//

TEST(Session, ExperimentTablesAreStableAcrossRuns) {
  // The eval drivers share one session per workload; a second run is
  // served from warm caches and must format byte-identically (the
  // inspection and ablation tables carry no timings).
  std::string T2a =
      formatInspectionTable("Table 2", runDebuggingExperiment());
  std::string T2b =
      formatInspectionTable("Table 2", runDebuggingExperiment());
  EXPECT_EQ(T2a, T2b);

  std::string Aa = formatAblation(runContextAblation());
  std::string Ab = formatAblation(runContextAblation());
  EXPECT_EQ(Aa, Ab);
}

//===----------------------------------------------------------------------===//
// Telemetry rendering
//===----------------------------------------------------------------------===//

TEST(Session, StatsStringListsEveryStage) {
  AnalysisSession S(Source);
  ASSERT_NE(S.sdg(), nullptr);
  std::string Stats = S.statsString();
  EXPECT_NE(Stats.find("session stages (memoization):"), std::string::npos);
  for (unsigned I = 0; I != NumSessionStages; ++I)
    EXPECT_NE(Stats.find(std::string("  ") +
                         sessionStageName(static_cast<SessionStage>(I)) +
                         ": hits="),
              std::string::npos)
        << sessionStageName(static_cast<SessionStage>(I));
}

//===----------------------------------------------------------------------===//
// Failure isolation: stage crashes, retries, taint, watchdog
//===----------------------------------------------------------------------===//

namespace {

/// Resets the injector (and restores the stall cap) around a test.
struct InjectorGuard {
  InjectorGuard() { clean(); }
  ~InjectorGuard() { clean(); }
  static void clean() {
    FaultInjector::instance().reset();
    FaultInjector::instance().setStallCapMs(100);
  }
};

const Instr *anySeed(const Program &P) {
  const Instr *Last = nullptr;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line)
          Last = I.get();
  return Last;
}

} // namespace

TEST(Session, TransientStageCrashIsRetriedToSuccess) {
  InjectorGuard Guard;
  // The fault fires once and disarms; the session's bounded retry
  // reruns the stage clean, so the caller never sees the crash.
  FaultInjector::instance().arm("pta.solve", /*AtPoll=*/1, FaultKind::Throw,
                                /*Transient=*/true);
  AnalysisSession S(Source);
  PointsToResult *PTA = S.pointsTo();
  ASSERT_NE(PTA, nullptr);
  EXPECT_TRUE(S.lastError().isOk());
  EXPECT_GE(S.stageRetries(), 1u);
  EXPECT_EQ(S.stageFailures(), 0u);
  // The retried artifact ran clean: it is NOT degraded and NOT
  // tainted, so a re-request is a pure cache hit.
  EXPECT_FALSE(PTA->report().degraded());
  EXPECT_EQ(S.pointsTo(), PTA);
}

TEST(Session, PersistentStageCrashFailsWithStatusAndCachesNothing) {
  InjectorGuard Guard;
  FaultInjector::instance().arm("pta.solve", /*AtPoll=*/1, FaultKind::Throw);
  AnalysisSession S(Source);
  EXPECT_EQ(S.pointsTo(), nullptr);
  EXPECT_FALSE(S.lastError().isOk());
  EXPECT_EQ(S.lastError().code(), StatusCode::FaultInjected);
  uint64_t FailuresAfterFirst = S.stageFailures();
  EXPECT_GE(FailuresAfterFirst, 1u);

  // The failure was NOT memoized: a second request retries the stage
  // from scratch (and fails again while the fault stays armed).
  EXPECT_EQ(S.pointsTo(), nullptr);
  EXPECT_GT(S.stageFailures(), FailuresAfterFirst);

  // Downstream accessors propagate the failure instead of crashing.
  EXPECT_EQ(S.sdg(), nullptr);
  Expected<SDG *> G = S.sdgChecked();
  EXPECT_FALSE(G.ok());

  // Once the fault clears, the SAME session heals with no reset.
  FaultInjector::instance().reset();
  PointsToResult *PTA = S.pointsTo();
  ASSERT_NE(PTA, nullptr);
  EXPECT_TRUE(S.lastError().isOk());
  EXPECT_FALSE(PTA->report().degraded());
  ASSERT_NE(S.sdg(), nullptr);
}

TEST(Session, TaintedDegradedArtifactIsRecomputedAfterFaultClears) {
  InjectorGuard Guard;
  // A Degrade fault produces a valid-but-degraded artifact. It is
  // served for the request that computed it, but marked tainted: the
  // next request evicts it (and its downstream cone) and recomputes.
  FaultInjector::instance().arm("pta.solve", /*AtPoll=*/1,
                                FaultKind::Degrade);
  AnalysisSession S(Source);
  PointsToResult *Faulty = S.pointsTo();
  ASSERT_NE(Faulty, nullptr);
  EXPECT_TRUE(Faulty->report().degraded());
  EXPECT_EQ(Faulty->report().Reason, "fault:pta.solve");
  const SliceResult *FaultySlice =
      S.sliceBackwardCached(anySeed(*S.program()), SliceMode::Thin);
  ASSERT_NE(FaultySlice, nullptr);

  FaultInjector::instance().reset();
  uint64_t InvalidatedBefore = invalidatedOf(S, SessionStage::PTA);
  PointsToResult *Healed = S.pointsTo();
  ASSERT_NE(Healed, nullptr);
  EXPECT_FALSE(Healed->report().degraded());
  EXPECT_GT(invalidatedOf(S, SessionStage::PTA), InvalidatedBefore);

  // The healed answer matches a fault-free session byte for byte.
  const SliceResult *HealedSlice =
      S.sliceBackwardCached(anySeed(*S.program()), SliceMode::Thin);
  ASSERT_NE(HealedSlice, nullptr);
  EXPECT_TRUE(HealedSlice->complete());
  AnalysisSession Fresh(Source);
  const SliceResult *Ref =
      Fresh.sliceBackwardCached(anySeed(*Fresh.program()), SliceMode::Thin);
  ASSERT_NE(Ref, nullptr);
  EXPECT_EQ(lineNumbers(*HealedSlice), lineNumbers(*Ref));
  EXPECT_EQ(HealedSlice->sizeStmts(), Ref->sizeStmts());
}

TEST(Session, WatchdogRescuesAStalledStage) {
  InjectorGuard Guard;
  // The stage stops polling usefully (a Stall fault busy-waits); only
  // the watchdog's preemptive cancel can stop it before the stall
  // cap. With a 10 s cap and a 50 ms deadline, finishing quickly
  // proves the watchdog did the rescue — and the reason says so.
  FaultInjector::instance().arm("pta.solve", /*AtPoll=*/1, FaultKind::Stall);
  FaultInjector::instance().setStallCapMs(10'000);
  AnalysisBudget B;
  B.BudgetMs = 50;
  B.start();
  AnalysisSession S(Source);
  S.setBudget(&B);
  auto T0 = std::chrono::steady_clock::now();
  PointsToResult *PTA = S.pointsTo();
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  ASSERT_NE(PTA, nullptr);
  EXPECT_TRUE(PTA->report().degraded());
  EXPECT_EQ(PTA->report().Reason, "watchdog");
  EXPECT_LT(ElapsedMs, 5000) << "stall was not rescued by the watchdog";
}

TEST(Session, CheckedAccessorsReportStructuredStatus) {
  InjectorGuard Guard;
  AnalysisSession S(Source);
  // Caller error: a null seed is InvalidArgument, not a crash.
  Expected<const SliceResult *> Bad =
      S.sliceBackwardChecked(nullptr, SliceMode::Thin);
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), StatusCode::InvalidArgument);

  Expected<Program *> P = S.programChecked();
  ASSERT_TRUE(P.ok());
  Expected<const SliceResult *> Good =
      S.sliceBackwardChecked(anySeed(**P), SliceMode::Thin);
  ASSERT_TRUE(Good.ok()) << Good.status().str();
  EXPECT_TRUE((*Good)->complete());

  // A compile failure surfaces as a ParseError/SemaError Status.
  S.setSource("def main() { var x = }");
  Expected<Program *> BadP = S.programChecked();
  EXPECT_FALSE(BadP.ok());
  EXPECT_TRUE(BadP.status().code() == StatusCode::ParseError ||
              BadP.status().code() == StatusCode::SemaError);
  EXPECT_FALSE(BadP.status().message().empty());
}

TEST(Session, StatsStringReportsFailureIsolationTelemetry) {
  InjectorGuard Guard;
  FaultInjector::instance().arm("pta.solve", /*AtPoll=*/1, FaultKind::Throw);
  AnalysisSession S(Source);
  EXPECT_EQ(S.pointsTo(), nullptr);
  std::string Stats = S.statsString();
  EXPECT_NE(Stats.find("failure isolation:"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("stage_failures="), std::string::npos) << Stats;
}
