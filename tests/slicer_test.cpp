//===-- slicer_test.cpp - CI slicing unit tests ---------------------------------==//

#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    G = S->sdg();
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }

  /// Source line numbers (within any method) of the slice.
  std::vector<unsigned> lines(const SliceResult &S) {
    std::vector<unsigned> Out;
    for (const SourceLine &L : S.sourceLines())
      Out.push_back(L.Line);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
};

bool containsLine(const std::vector<unsigned> &Lines, unsigned Line) {
  return std::find(Lines.begin(), Lines.end(), Line) != Lines.end();
}

} // namespace

TEST(Slicer, StraightLineValueChain) {
  Fixture F(R"(
def main() {
  var a = 1;
  var b = a + 2;
  var unrelated = 99;
  var c = b * 3;
  print(c);
  print(unrelated);
}
)");
  const Instr *Seed = F.lastAtLine(7); // print(c)
  ASSERT_NE(Seed, nullptr);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  auto L = F.lines(Thin);
  EXPECT_TRUE(containsLine(L, 3)); // a
  EXPECT_TRUE(containsLine(L, 4)); // b
  EXPECT_TRUE(containsLine(L, 6)); // c
  EXPECT_FALSE(containsLine(L, 5)); // unrelated
  EXPECT_FALSE(containsLine(L, 8));
}

TEST(Slicer, ThinSubsetOfTraditional) {
  Fixture F(R"(
class Box { var v: Object; }
def main() {
  var b = new Box();
  if (readInt() > 0) {
    b.v = new Object();
  }
  var r = b.v;
  print(r == null);
}
)");
  const Instr *Seed = F.lastAtLine(9);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  SliceResult Trad = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  BitSet Extra = Thin.nodeSet();
  Extra.subtract(Trad.nodeSet());
  EXPECT_TRUE(Extra.empty());
  EXPECT_LT(Thin.sizeStmts(), Trad.sizeStmts());
  // The branch is in the traditional slice only.
  const Instr *Branch = nullptr;
  for (const auto &BB : F.P->mainMethod()->blocks())
    if (BB->terminator() && isa<BranchInstr>(BB->terminator()))
      Branch = BB->terminator();
  ASSERT_NE(Branch, nullptr);
  EXPECT_FALSE(Thin.contains(Branch));
  EXPECT_TRUE(Trad.contains(Branch));
}

TEST(Slicer, SeedAlwaysInSlice) {
  Fixture F("def main() { print(1); }");
  const Instr *Seed = F.lastAtLine(1);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  EXPECT_TRUE(Thin.contains(Seed));
}

TEST(Slicer, InterproceduralThinChain) {
  Fixture F(R"(
def double(x: int): int {
  return x * 2;
}
def main() {
  var n = readInt();
  var d = double(n);
  print(d);
}
)");
  const Instr *Seed = F.lastAtLine(8);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  auto L = F.lines(Thin);
  EXPECT_TRUE(containsLine(L, 3)); // return x * 2
  EXPECT_TRUE(containsLine(L, 6)); // n = readInt()
  EXPECT_TRUE(containsLine(L, 7)); // the call line (actual-in)
}

TEST(Slicer, IndexFlowExcludedFromThin) {
  Fixture F(R"(
def main() {
  var arr = new int[10];
  var idx = readInt();
  arr[idx] = 42;
  var out = arr[idx - idx];
  print(out);
}
)");
  const Instr *Seed = F.lastAtLine(7);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  SliceResult Trad = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  // The stored 42 (line 5) is a producer; the index computation
  // (line 4) is explainer material.
  EXPECT_TRUE(containsLine(F.lines(Thin), 5));
  EXPECT_FALSE(containsLine(F.lines(Thin), 4));
  EXPECT_TRUE(containsLine(F.lines(Trad), 4));
}

TEST(Slicer, PhiJoinsBothArms) {
  Fixture F(R"(
def main() {
  var x = 0;
  if (readInt() > 0) {
    x = 10;
  } else {
    x = 20;
  }
  print(x);
}
)");
  const Instr *Seed = F.lastAtLine(9);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  auto L = F.lines(Thin);
  EXPECT_TRUE(containsLine(L, 5));
  EXPECT_TRUE(containsLine(L, 7));
  EXPECT_FALSE(containsLine(L, 4)); // The condition is control-only.
}

TEST(Slicer, ForwardSlice) {
  Fixture F(R"(
def main() {
  var a = readInt();
  var b = a + 1;
  var c = 5;
  print(b);
  print(c);
}
)");
  const Instr *Seed = F.lastAtLine(3); // a's def
  SliceResult Fwd = sliceForward(*F.G, Seed, SliceMode::Thin);
  auto L = F.lines(Fwd);
  EXPECT_TRUE(containsLine(L, 4));
  EXPECT_TRUE(containsLine(L, 6));
  EXPECT_FALSE(containsLine(L, 5));
  EXPECT_FALSE(containsLine(L, 7));
}

TEST(Slicer, MultiSeed) {
  Fixture F(R"(
def main() {
  var a = 1;
  var b = 2;
  print(a);
  print(b);
}
)");
  const Instr *S1 = F.lastAtLine(5);
  const Instr *S2 = F.lastAtLine(6);
  SliceResult Both =
      sliceBackward(*F.G, std::vector<const Instr *>{S1, S2},
                    SliceMode::Thin);
  auto L = F.lines(Both);
  EXPECT_TRUE(containsLine(L, 3));
  EXPECT_TRUE(containsLine(L, 4));
}

TEST(Slicer, HeapFlowThroughContainerInternals) {
  // The essence of Figure 1: the value is traced through the container
  // while the container plumbing stays out of the thin slice.
  Fixture F(R"(
class Vec {
  var elems: Object[];
  var count: int;
  def init() { elems = new Object[4]; count = 0; }
  def add(p: Object) { elems[count] = p; count = count + 1; }
  def get(i: int): Object { return elems[i]; }
}
def main() {
  var v = new Vec();
  var payload = readLine();
  v.add(payload);
  var out = (string) v.get(0);
  print(out);
}
)");
  const Instr *Seed = F.lastAtLine(14);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  auto L = F.lines(Thin);
  EXPECT_TRUE(containsLine(L, 6));  // add's array write
  EXPECT_TRUE(containsLine(L, 7));  // get's array read
  EXPECT_TRUE(containsLine(L, 11)); // payload = readLine()
  EXPECT_TRUE(containsLine(L, 12)); // the add call (actual-in)
  EXPECT_FALSE(containsLine(L, 5)); // init's elems allocation: base only
  SliceResult Trad = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  EXPECT_TRUE(containsLine(F.lines(Trad), 5));
}

TEST(Slicer, SliceResultViews) {
  Fixture F("def main() { var x = 1; print(x); }");
  const Instr *Seed = F.lastAtLine(1);
  SliceResult Thin = sliceBackward(*F.G, Seed, SliceMode::Thin);
  EXPECT_GE(Thin.statements().size(), 2u);
  EXPECT_FALSE(Thin.sourceLines().empty());
  EXPECT_NE(Thin.str().find("main:1"), std::string::npos);
  EXPECT_TRUE(Thin.containsLine(F.P->mainMethod(), 1));
  EXPECT_FALSE(Thin.containsLine(F.P->mainMethod(), 99));
}

TEST(Slicer, StatementViewCachedAndInvalidated) {
  Fixture F(R"(
def main() {
  var a = 1;
  var b = a + 2;
  print(b);
  print(a);
}
)");
  const Instr *Seed = F.lastAtLine(5); // print(b)
  ASSERT_NE(Seed, nullptr);
  SliceResult S = sliceBackward(*F.G, Seed, SliceMode::Thin);

  // Repeated calls return the one cached vector, sorted by node id.
  const std::vector<const Instr *> &Stmts = S.statements();
  EXPECT_EQ(&Stmts, &S.statements());
  EXPECT_EQ(&S.sourceLines(), &S.sourceLines());
  std::vector<int> Ids;
  for (const Instr *I : Stmts)
    Ids.push_back(F.G->nodeFor(I));
  EXPECT_TRUE(std::is_sorted(Ids.begin(), Ids.end()));

  // Mutation through unionWith invalidates the cache; the recomputed
  // view covers the union.
  SliceResult Other =
      sliceBackward(*F.G, F.lastAtLine(6), SliceMode::Traditional);
  const std::size_t Before = S.statements().size();
  S.unionWith(Other);
  EXPECT_GE(S.statements().size(), Before);
  for (const Instr *I : Other.statements())
    EXPECT_TRUE(S.contains(I));
}

TEST(Slicer, Deterministic) {
  Fixture F(R"(
class Box { var v: Object; }
def main() {
  var b = new Box();
  b.v = new Object();
  print(b.v == null);
}
)");
  const Instr *Seed = F.lastAtLine(6);
  SliceResult A = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  SliceResult B = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  EXPECT_TRUE(A.nodeSet() == B.nodeSet());
}
