//===-- workloads_test.cpp - Evaluation workload integration tests --------------==//
//
// Checks that every workload compiles and verifies, that the injected
// bugs actually manifest under the interpreter, and that the
// experiment drivers reproduce the paper's qualitative results.
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Experiments.h"
#include "eval/Generator.h"
#include "eval/Runtime.h"
#include "eval/Workload.h"
#include "ir/Verifier.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

using namespace tsl;

//===----------------------------------------------------------------------===//
// Compilation of every workload
//===----------------------------------------------------------------------===//

TEST(Workloads, AllBugProgramsCompileAndVerify) {
  for (const BugCase &Case : debuggingCases()) {
    DiagnosticEngine Diag;
    auto P = compileThinJ(Case.Prog.Source, Diag);
    ASSERT_NE(P, nullptr) << Case.Id << ":\n" << Diag.str();
    auto V = verifyProgram(*P);
    EXPECT_TRUE(V.empty()) << Case.Id << ": " << V.front();
    // Seed and desired markers resolve to statements.
    EXPECT_NE(instrAtLine(*P, Case.Prog.markerLine(Case.SeedMarker)),
              nullptr)
        << Case.Id;
    for (const std::string &Marker : Case.DesiredMarkers)
      EXPECT_NE(instrAtLine(*P, Case.Prog.markerLine(Marker)), nullptr)
          << Case.Id << " marker " << Marker;
  }
}

TEST(Workloads, AllCastProgramsCompileAndVerify) {
  for (const CastCase &Case : toughCastCases()) {
    DiagnosticEngine Diag;
    auto P = compileThinJ(Case.Prog.Source, Diag);
    ASSERT_NE(P, nullptr) << Case.Id << ":\n" << Diag.str();
    EXPECT_TRUE(verifyProgram(*P).empty()) << Case.Id;
    EXPECT_NE(castAtLine(*P, Case.Prog.markerLine(Case.CastMarker)), nullptr)
        << Case.Id;
  }
}

//===----------------------------------------------------------------------===//
// The bugs manifest dynamically
//===----------------------------------------------------------------------===//

namespace {

InterpResult runWorkload(const WorkloadProgram &W,
                         std::vector<std::string> Lines = {},
                         std::vector<int64_t> Ints = {}) {
  DiagnosticEngine Diag;
  auto P = compileThinJ(W.Source, Diag);
  EXPECT_NE(P, nullptr) << Diag.str();
  InterpOptions Opts;
  Opts.InputLines = std::move(Lines);
  Opts.InputInts = std::move(Ints);
  return interpret(*P, Opts);
}

bool hasOutput(const InterpResult &R, const std::string &Needle) {
  for (const std::string &Line : R.Output)
    if (Line.find(Needle) != std::string::npos)
      return true;
  return false;
}

const WorkloadProgram &progNamed(const std::string &Name) {
  static std::vector<BugCase> Bugs = debuggingCases();
  for (const BugCase &B : Bugs)
    if (B.Prog.Name == Name)
      return B.Prog;
  ADD_FAILURE() << "no workload " << Name;
  return Bugs.front().Prog;
}

} // namespace

TEST(Workloads, NanoxmlBugsManifest) {
  InterpResult R = runWorkload(progNamed("nanoxml"), {"heading-text"});
  // nanoxml-1: "42" should print but the off-by-one eats the first char.
  EXPECT_TRUE(hasOutput(R, "ID: "));
  EXPECT_FALSE(hasOutput(R, "ID: 42"));
  // nanoxml-2: child names lose their first character ("ead" not "head").
  EXPECT_TRUE(hasOutput(R, "CHILD: ead"));
  // nanoxml-3: content truncated to 3 chars.
  EXPECT_TRUE(hasOutput(R, "HEADING: hea"));
  // nanoxml-4: only two of three items print.
  unsigned Items = 0;
  for (const std::string &Line : R.Output)
    Items += Line.find("ITEM: ") != std::string::npos;
  EXPECT_EQ(Items, 2u);
  // nanoxml-5: the cleared alias loses the action attribute.
  EXPECT_TRUE(hasOutput(R, "ACTION: null"));
  // nanoxml-6: the wrong default leaks out.
  EXPECT_TRUE(hasOutput(R, "TEXT: ?"));
}

TEST(Workloads, JtopasBugsManifest) {
  // jtopas-2 output appears, then jtopas-1 crashes with the NPE.
  InterpResult R = runWorkload(progNamed("jtopas"),
                               {"alpha beta", "alpha beta"});
  EXPECT_TRUE(hasOutput(R, "WORD: [alpha ]")); // Trailing separator bug.
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("null receiver"), std::string::npos);
}

TEST(Workloads, AntBugsManifest) {
  InterpResult R = runWorkload(progNamed("ant"), {}, {3, 1});
  EXPECT_TRUE(hasOutput(R, "OUT: src-dir"));      // ant-2 wrong property.
  EXPECT_TRUE(hasOutput(R, "STATUS: deploying")); // ant-3: 3*2+1=7.
  EXPECT_TRUE(hasOutput(R, "MODE: quiet"));       // ant-4 inverted flag.
  EXPECT_FALSE(R.Completed); // ant-1 NPE at the end.
}

TEST(Workloads, XmlsecBugsManifest) {
  InterpResult R = runWorkload(progNamed("xmlsec"), {"abc", "abc"});
  EXPECT_TRUE(hasOutput(R, "SIG MISMATCH"));
  EXPECT_TRUE(hasOutput(R, "HASH MISMATCH"));
  EXPECT_TRUE(R.Completed) << R.Error;
}

TEST(Workloads, CastProgramsRunClean) {
  std::vector<CastCase> Cases = toughCastCases();
  auto ProgOf = [&](const std::string &Name) -> const WorkloadProgram & {
    for (const CastCase &C : Cases)
      if (C.Prog.Name == Name)
        return C.Prog;
    ADD_FAILURE();
    return Cases.front().Prog;
  };
  EXPECT_TRUE(runWorkload(ProgOf("mtrt"), {}, {4, 2, 3, 4, 5}).Completed);
  EXPECT_TRUE(runWorkload(ProgOf("jess")).Completed);
  EXPECT_TRUE(runWorkload(ProgOf("javac")).Completed);
  EXPECT_TRUE(
      runWorkload(ProgOf("jack"), {"if total then stop end"}).Completed);
}

//===----------------------------------------------------------------------===//
// Experiment drivers: the paper's qualitative claims
//===----------------------------------------------------------------------===//

TEST(Experiments, DebuggingRowsFindTheBugs) {
  for (const InspectionRow &Row : runDebuggingExperiment()) {
    if (!Row.SlicingUseful)
      continue;
    EXPECT_TRUE(Row.FoundAllThin) << Row.Id;
    EXPECT_TRUE(Row.FoundAllTrad) << Row.Id;
    EXPECT_LE(Row.Thin, Row.Trad) << Row.Id;
    EXPECT_GE(Row.Thin, 1u) << Row.Id;
  }
}

TEST(Experiments, DebuggingAggregateRatio) {
  unsigned Thin = 0, Trad = 0;
  for (const InspectionRow &Row : runDebuggingExperiment()) {
    if (!Row.SlicingUseful)
      continue;
    Thin += Row.Thin;
    Trad += Row.Trad;
  }
  // The paper reports 3.3x; shape check: clearly above 1.2x.
  EXPECT_GT(static_cast<double>(Trad) / Thin, 1.2);
}

TEST(Experiments, TrivialBugsStayTrivial) {
  for (const InspectionRow &Row : runDebuggingExperiment()) {
    if (Row.Id == "jtopas-1") {
      EXPECT_EQ(Row.Thin, 1u);
      EXPECT_EQ(Row.Trad, 1u);
    }
    if (Row.Id == "ant-1") {
      EXPECT_EQ(Row.Thin, 2u);
      EXPECT_EQ(Row.Trad, 2u);
    }
  }
}

TEST(Experiments, NoObjSensDegradesContainerCases) {
  bool SomeDegradation = false;
  for (const InspectionRow &Row : runDebuggingExperiment()) {
    EXPECT_GE(Row.ThinNoObjSens, Row.Thin) << Row.Id;
    SomeDegradation |= Row.ThinNoObjSens > Row.Thin;
  }
  EXPECT_TRUE(SomeDegradation);
}

TEST(Experiments, ToughCastRowsFindTheWitnesses) {
  for (const InspectionRow &Row : runToughCastExperiment()) {
    EXPECT_TRUE(Row.FoundAllThin) << Row.Id;
    EXPECT_TRUE(Row.FoundAllTrad) << Row.Id;
    EXPECT_LE(Row.Thin, Row.Trad) << Row.Id;
  }
}

TEST(Experiments, CastsAreActuallyTough) {
  // Every studied cast must be unverifiable by the pointer analysis.
  for (const CastCase &Case : toughCastCases()) {
    DiagnosticEngine Diag;
    auto P = compileThinJ(Case.Prog.Source, Diag);
    ASSERT_NE(P, nullptr);
    auto PTA = runPointsTo(*P);
    const CastInstr *Cast =
        castAtLine(*P, Case.Prog.markerLine(Case.CastMarker));
    ASSERT_NE(Cast, nullptr) << Case.Id;
    EXPECT_FALSE(PTA->castCannotFail(Cast)) << Case.Id;
  }
}

TEST(Experiments, JavacHasTheLargestGap) {
  double JavacRatio = 0, OtherMax = 0;
  for (const InspectionRow &Row : runToughCastExperiment()) {
    if (Row.Id.rfind("javac", 0) == 0)
      JavacRatio = std::max(JavacRatio, Row.Ratio);
    else
      OtherMax = std::max(OtherMax, Row.Ratio);
  }
  // In the paper javac dominates Table 3 (16-34x vs <5x elsewhere).
  EXPECT_GT(JavacRatio, 2.0);
}

TEST(Experiments, Table1ShapesAreSane) {
  std::vector<Table1Row> Rows = runTable1();
  ASSERT_EQ(Rows.size(), 8u);
  for (const Table1Row &R : Rows) {
    EXPECT_GT(R.Classes, 5u) << R.Name;
    EXPECT_GT(R.ReachableMethods, 10u) << R.Name;
    // Cloning makes CG nodes exceed methods (the paper's observation).
    EXPECT_GT(R.CGNodes, R.ReachableMethods) << R.Name;
    EXPECT_GT(R.SDGStmts, 500u) << R.Name;
  }
}

TEST(Experiments, GeneratedProgramsCompile) {
  for (uint64_t Seed : {1ull, 7ull, 99ull}) {
    DiagnosticEngine Diag;
    auto P = compileThinJ(generateRandomProgram(Seed), Diag);
    EXPECT_NE(P, nullptr) << "seed " << Seed << ":\n" << Diag.str();
  }
  DiagnosticEngine Diag;
  std::string Padded = runtimeLibrarySource() +
                       generatePadding("X", 3, 4) +
                       "def main() { print(padEntryX(1)); }";
  EXPECT_NE(compileThinJ(Padded, Diag), nullptr) << Diag.str();
}
