//===-- tabulation_test.cpp - Context-sensitive slicing tests -------------------==//

#include "lang/Lower.h"
#include "pipeline/Session.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  ModRefResult *MR = nullptr;
  SDG *CS = nullptr;
  SDG *CI = nullptr;

  explicit Fixture(const std::string &Source) {
    S = std::make_unique<AnalysisSession>(Source);
    P = S->program();
    EXPECT_NE(P, nullptr) << S->diagnostics().str();
    if (!P)
      return;
    PTA = S->pointsTo();
    MR = S->modRef();
    SDGOptions CSOpts;
    CSOpts.ContextSensitive = true;
    S->setSDGOptions(CSOpts);
    CS = S->sdg();
    S->setSDGOptions(SDGOptions());
    CI = S->sdg();
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }

  bool sliceHasLine(const SliceResult &S, unsigned Line) {
    for (const SourceLine &L : S.sourceLines())
      if (L.Line == Line)
        return true;
    return false;
  }
};

// The classic unrealizable-path example: two callers pass different
// values through the same identity function. A context-insensitive
// slice of one result drags in the other caller's argument; the
// tabulation slicer does not.
const char *TwoCallers = R"(
def id(x: int): int {
  return x;
}
def main() {
  var a = readInt();
  var b = readInt();
  var ra = id(a);
  var rb = id(b);
  print(ra);
  print(rb);
}
)";

} // namespace

TEST(Tabulation, ExcludesUnrealizablePaths) {
  Fixture F(TwoCallers);
  const Instr *Seed = F.lastAtLine(10); // print(ra)

  SliceResult CISlice = sliceBackward(*F.CI, Seed, SliceMode::Thin);
  // Context-insensitive: both inputs pollute the slice.
  EXPECT_TRUE(F.sliceHasLine(CISlice, 6));
  EXPECT_TRUE(F.sliceHasLine(CISlice, 7));

  TabulationSlicer Tab(*F.CS, SliceMode::Thin);
  SliceResult CSSlice = Tab.slice(Seed);
  // Context-sensitive: only a's chain.
  EXPECT_TRUE(F.sliceHasLine(CSSlice, 6));
  EXPECT_FALSE(F.sliceHasLine(CSSlice, 7));
  EXPECT_TRUE(F.sliceHasLine(CSSlice, 3)); // id's return.
  EXPECT_TRUE(F.sliceHasLine(CSSlice, 8)); // The call.
}

TEST(Tabulation, SummaryEdgesExist) {
  Fixture F(TwoCallers);
  TabulationSlicer Tab(*F.CS, SliceMode::Thin);
  EXPECT_GT(Tab.numSummaryEdges(), 0u);
}

TEST(Tabulation, DescendsIntoCallees) {
  Fixture F(R"(
def compute(): int {
  var inner = 21;
  return inner * 2;
}
def main() {
  print(compute());
}
)");
  TabulationSlicer Tab(*F.CS, SliceMode::Thin);
  SliceResult S = Tab.slice(F.lastAtLine(7));
  EXPECT_TRUE(F.sliceHasLine(S, 3));
  EXPECT_TRUE(F.sliceHasLine(S, 4));
}

TEST(Tabulation, HeapFlowThroughCalleesMatched) {
  Fixture F(R"(
class Cell { var v: int; }
def store(c: Cell, x: int) {
  c.v = x;
}
def load(c: Cell): int {
  return c.v;
}
def main() {
  var c1 = new Cell();
  var c2 = new Cell();
  store(c1, readInt());
  store(c2, 5);
  print(load(c1));
}
)");
  TabulationSlicer Tab(*F.CS, SliceMode::Thin);
  SliceResult S = Tab.slice(F.lastAtLine(14)); // print(load(c1))
  EXPECT_TRUE(F.sliceHasLine(S, 4));  // the store statement
  EXPECT_TRUE(F.sliceHasLine(S, 12)); // store(c1, readInt())
  EXPECT_TRUE(F.sliceHasLine(S, 7));  // the load
}

TEST(Tabulation, ThinStillSubsetOfTraditional) {
  Fixture F(TwoCallers);
  TabulationSlicer Thin(*F.CS, SliceMode::Thin);
  TabulationSlicer Trad(*F.CS, SliceMode::Traditional);
  const Instr *Seed = F.lastAtLine(10);
  BitSet Extra = Thin.slice(Seed).nodeSet();
  Extra.subtract(Trad.slice(Seed).nodeSet());
  EXPECT_TRUE(Extra.empty());
}

TEST(Tabulation, TraditionalFollowsControl) {
  Fixture F(R"(
def main() {
  var x = 0;
  if (readInt() > 0) {
    x = 1;
  }
  print(x);
}
)");
  TabulationSlicer Thin(*F.CS, SliceMode::Thin);
  TabulationSlicer Trad(*F.CS, SliceMode::Traditional);
  const Instr *Seed = F.lastAtLine(7);
  EXPECT_FALSE(F.sliceHasLine(Thin.slice(Seed), 4));
  EXPECT_TRUE(F.sliceHasLine(Trad.slice(Seed), 4));
}

TEST(Tabulation, RecursionTerminates) {
  Fixture F(R"(
def fact(n: int): int {
  if (n <= 1) {
    return 1;
  }
  return n * fact(n - 1);
}
def main() {
  print(fact(5));
}
)");
  TabulationSlicer Tab(*F.CS, SliceMode::Thin);
  SliceResult S = Tab.slice(F.lastAtLine(9));
  EXPECT_TRUE(F.sliceHasLine(S, 4));
  EXPECT_TRUE(F.sliceHasLine(S, 6));
}
