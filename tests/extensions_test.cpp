//===-- extensions_test.cpp - CHA, chopping, dot export, alias depth ------------==//

#include "cg/CHA.h"
#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDGDot.h"
#include "slicer/Chop.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"

#include <gtest/gtest.h>

using namespace tsl;

namespace {

struct Fixture {
  std::unique_ptr<Program> P;
  std::unique_ptr<PointsToResult> PTA;
  std::unique_ptr<SDG> G;

  explicit Fixture(const std::string &Source) {
    DiagnosticEngine Diag;
    P = compileThinJ(Source, Diag);
    EXPECT_NE(P, nullptr) << Diag.str();
    if (!P)
      return;
    PTA = runPointsTo(*P);
    G = buildSDG(*P, *PTA, nullptr);
  }

  const Instr *lastAtLine(unsigned Line) {
    const Instr *Last = nullptr;
    for (const auto &M : P->methods())
      for (const auto &BB : M->blocks())
        for (const auto &I : BB->instrs())
          if (I->loc().Line == Line)
            Last = I.get();
    return Last;
  }

  bool hasLine(const SliceResult &S, unsigned Line) {
    for (const SourceLine &L : S.sourceLines())
      if (L.Line == Line)
        return true;
    return false;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CHA call graph
//===----------------------------------------------------------------------===//

TEST(CHA, CoarserThanPointsTo) {
  const char *Source = R"(
class Animal { def speak(): string { return "..."; } }
class Cat extends Animal { def speak(): string { return "meow"; } }
class Dog extends Animal { def speak(): string { return "woof"; } }
def main() {
  var a: Animal = new Cat();
  print(a.speak());
}
)";
  Fixture F(Source);
  ClassHierarchy CH(*F.P);
  auto CHA = buildCHACallGraph(*F.P, CH);

  Method *DogSpeak = F.P->findClass(F.P->strings().lookup("Dog"))
                         ->findOwnMethod(F.P->strings().lookup("speak"));
  // CHA conservatively reaches Dog.speak; the points-to call graph
  // does not (pta_test asserts the latter).
  EXPECT_TRUE(CHA->isReachable(DogSpeak));
  EXPECT_FALSE(F.PTA->callGraph().isReachable(DogSpeak));
  // CHA reaches at least everything points-to reaches.
  for (Method *M : F.PTA->callGraph().reachableMethods())
    EXPECT_TRUE(CHA->isReachable(M))
        << M->qualifiedName(F.P->strings());
}

TEST(CHA, StaticCallsAreExact) {
  Fixture F(R"(
def helper(): int { return 3; }
def unused(): int { return 4; }
def main() { print(helper()); }
)");
  ClassHierarchy CH(*F.P);
  auto CHA = buildCHACallGraph(*F.P, CH);
  Method *Unused = nullptr;
  for (const auto &M : F.P->methods())
    if (M->qualifiedName(F.P->strings()) == "unused")
      Unused = M.get();
  EXPECT_FALSE(CHA->isReachable(Unused));
}

//===----------------------------------------------------------------------===//
// Chopping
//===----------------------------------------------------------------------===//

TEST(Chop, IntersectsForwardAndBackward) {
  Fixture F(R"(
def main() {
  var src = readInt();
  var mid = src + 1;
  var other = readInt();
  var sink = mid * 2 + other;
  print(sink);
  print(other);
}
)");
  const Instr *Src = F.lastAtLine(3);
  const Instr *Sink = F.lastAtLine(6);
  SliceResult C = chop(*F.G, Src, Sink, SliceMode::Thin);
  EXPECT_TRUE(F.hasLine(C, 3));  // Source.
  EXPECT_TRUE(F.hasLine(C, 4));  // On the path.
  EXPECT_TRUE(F.hasLine(C, 6));  // Sink.
  EXPECT_FALSE(F.hasLine(C, 5)); // Flows to sink but not from source.
  EXPECT_FALSE(F.hasLine(C, 7)); // After the sink.
}

TEST(Chop, EmptyWhenDisconnected) {
  Fixture F(R"(
def main() {
  var a = readInt();
  var b = readInt();
  print(a);
  print(b);
}
)");
  SliceResult C =
      chop(*F.G, F.lastAtLine(4), F.lastAtLine(5), SliceMode::Thin);
  EXPECT_EQ(C.sizeStmts(), 0u);
}

TEST(Chop, ThroughContainer) {
  // The Figure 1 question: how does the value get from the read to the
  // print? The chop is the producer path through the Vector.
  WorkloadProgram W = makeFigure1();
  Fixture F(W.Source);
  const Instr *Src = F.lastAtLine(W.markerLine("bug"));
  const Instr *Sink = F.lastAtLine(W.markerLine("seed"));
  SliceResult C = chop(*F.G, Src, Sink, SliceMode::Thin);
  EXPECT_TRUE(F.hasLine(C, W.markerLine("bug")));
  EXPECT_TRUE(F.hasLine(C, W.markerLine("add")));
  EXPECT_TRUE(F.hasLine(C, W.markerLine("get")));
  EXPECT_TRUE(F.hasLine(C, W.markerLine("seed")));
  // The names-reading loop counter is not on the value path.
  EXPECT_LT(C.sizeStmts(),
            sliceBackward(*F.G, Sink, SliceMode::Thin).sizeStmts());
}

//===----------------------------------------------------------------------===//
// Dot export
//===----------------------------------------------------------------------===//

TEST(Dot, EmitsNodesAndStyledEdges) {
  Fixture F(R"(
class Box { var v: Object; }
def main() {
  var b = new Box();
  b.v = new Object();
  if (b.v != null) {
    print("set");
  }
}
)");
  std::string Dot = exportDot(*F.G);
  EXPECT_NE(Dot.find("digraph sdg"), std::string::npos);
  EXPECT_NE(Dot.find("style=solid"), std::string::npos);  // Flow.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // BaseFlow.
  EXPECT_NE(Dot.find("style=dotted"), std::string::npos); // Control.
  EXPECT_NE(Dot.find("main:4"), std::string::npos);
  EXPECT_EQ(Dot.find("heap param"), std::string::npos);
}

TEST(Dot, RestrictionToSlice) {
  Fixture F(R"(
def main() {
  var a = 1;
  var b = 2;
  print(a);
  print(b);
}
)");
  SliceResult S =
      sliceBackward(*F.G, F.lastAtLine(5), SliceMode::Thin);
  DotOptions Opts;
  BitSet Nodes = S.nodeSet();
  Opts.Restrict = &Nodes;
  std::string Dot = exportDot(*F.G, Opts);
  EXPECT_NE(Dot.find("main:3"), std::string::npos);
  EXPECT_EQ(Dot.find("main:4"), std::string::npos); // b not in slice.
}

TEST(Dot, NodeCapRespected) {
  Fixture F(makeFigure1().Source);
  DotOptions Opts;
  Opts.MaxNodes = 10;
  std::string Dot = exportDot(*F.G, Opts);
  // Count node declarations.
  size_t Count = 0, Pos = 0;
  while ((Pos = Dot.find("[label=", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  EXPECT_LE(Count, 10u);
}

//===----------------------------------------------------------------------===//
// Alias-depth slicing
//===----------------------------------------------------------------------===//

TEST(AliasDepth, MonotoneAndConverges) {
  WorkloadProgram W = makeFigure4();
  Fixture F(W.Source);
  ThinExpansion Exp(*F.G, *F.PTA);
  const Instr *Seed = F.lastAtLine(W.markerLine("readopen"));

  SliceResult Prev = Exp.thinSliceWithAliasDepth(Seed, 0);
  SliceResult Plain = sliceBackward(*F.G, Seed, SliceMode::Thin);
  EXPECT_TRUE(Prev.nodeSet() == Plain.nodeSet()); // Depth 0 = thin.

  for (unsigned Depth = 1; Depth <= 5; ++Depth) {
    SliceResult Cur = Exp.thinSliceWithAliasDepth(Seed, Depth);
    BitSet Shrink = Prev.nodeSet();
    Shrink.subtract(Cur.nodeSet());
    EXPECT_TRUE(Shrink.empty()) << "depth " << Depth << " lost nodes";
    Prev = Cur;
  }
  // Depth >= 1 exposes the File allocation (the aliasing story).
  SliceResult One = Exp.thinSliceWithAliasDepth(Seed, 1);
  EXPECT_TRUE(F.hasLine(One, W.markerLine("file-alloc")));
  EXPECT_FALSE(F.hasLine(Plain, W.markerLine("file-alloc")));
}

TEST(AliasDepth, StaysWithinTraditionalDataPortion) {
  WorkloadProgram W = makeFigure4();
  Fixture F(W.Source);
  ThinExpansion Exp(*F.G, *F.PTA);
  const Instr *Seed = F.lastAtLine(W.markerLine("readopen"));
  SliceResult Deep = Exp.thinSliceWithAliasDepth(Seed, 10);
  SliceResult Trad = sliceBackward(*F.G, Seed, SliceMode::Traditional);
  BitSet Extra = Deep.nodeSet();
  Extra.subtract(Trad.nodeSet());
  EXPECT_TRUE(Extra.empty());
}
