#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage: check_bench.py --baseline BENCH_foo.json --run run.json [--tolerance 3.0]

Matches benchmarks by name and compares real_time (normalized to ns).
A benchmark regresses when run_time > tolerance * baseline_time. New or
vanished benchmarks are reported but are not regressions — baselines
were recorded on different hardware, which is also why the default
tolerance is a generous 3x: this check catches order-of-magnitude
accidents (a disabled cache, an accidental O(n^2)), not percent-level
noise. The CI job that runs this is report-only and never blocks a
merge.

Exit codes: 0 no regression, 1 regression(s), 2 bad invocation.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            continue
        out[bench["name"]] = bench["real_time"] * unit
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.2f%s" % (ns / scale, unit)
    return "%.0fns" % ns


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--run", required=True)
    ap.add_argument("--tolerance", type=float, default=3.0)
    args = ap.parse_args()

    try:
        base = load_benchmarks(args.baseline)
        run = load_benchmarks(args.run)
    except (OSError, ValueError) as err:
        print("check_bench: cannot load input: %s" % err, file=sys.stderr)
        return 2
    if not base:
        print("check_bench: no benchmarks in baseline %s" % args.baseline,
              file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(base):
        if name not in run:
            print("  MISSING  %-40s (in baseline, not in run)" % name)
            continue
        ratio = run[name] / base[name] if base[name] else float("inf")
        verdict = "REGRESSED" if ratio > args.tolerance else "ok"
        print("  %-9s %-40s %s -> %s  (%.2fx, limit %.1fx)"
              % (verdict, name, fmt_ns(base[name]), fmt_ns(run[name]),
                 ratio, args.tolerance))
        if ratio > args.tolerance:
            regressions.append(name)
    for name in sorted(set(run) - set(base)):
        print("  NEW      %-40s %s (no baseline)" % (name, fmt_ns(run[name])))

    if regressions:
        print("check_bench: %d regression(s) beyond %.1fx in %s"
              % (len(regressions), args.tolerance, args.run))
        return 1
    print("check_bench: %d benchmark(s) within %.1fx of %s"
          % (len(base), args.tolerance, args.baseline))
    return 0


if __name__ == "__main__":
    sys.exit(main())
