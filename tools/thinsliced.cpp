//===-- thinsliced.cpp - The thin-slice daemon ----------------------------===//
//
// Long-running serving face of the library: listens on a Unix-domain
// socket and answers the service protocol (load-source, slice,
// batch-slice, edit, stats, shutdown) from a registry of warm
// AnalysisSessions. The paper's use case is a developer firing many
// small slice queries against one warm analysis; thinsliced keeps that
// analysis warm across processes and clients:
//
//   thinsliced --socket /tmp/tsl.sock &
//   thinslice prog.tsj --connect /tmp/tsl.sock --line 24
//   thinslice prog.tsj --connect /tmp/tsl.sock --interactive
//
// Concurrency: request execution fans out on a shared work-stealing
// pool; slices on one warm session run in parallel (readers) while
// edits are exclusive (writer). Overload is answered with RETRY
// (status 6), never queued unboundedly. SIGTERM/SIGINT drain: in-
// flight requests finish and flush their responses, then the daemon
// exits 0.
//
// Exit codes: 0 graceful drain, 1 cannot bind/listen, 2 usage error,
// 5 internal failure.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/ParseInt.h"

#include <cstdio>
#include <cstring>

#include <signal.h>
#include <unistd.h>

using namespace tsl;

namespace {

SliceServer *ActiveServer = nullptr;

/// SIGTERM/SIGINT: one byte on the self-pipe, nothing else — write()
/// is async-signal-safe and the accept loop does the actual draining.
void onSignal(int) {
  if (ActiveServer)
    (void)!::write(ActiveServer->wakeFd(), "x", 1);
}

void usage() {
  fprintf(stderr,
          "usage: thinsliced --socket PATH [--threads N]\n"
          "                  [--analysis-threads N] [--max-queue N]\n"
          "                  [--max-sessions N] [--request-budget-ms N]\n"
          "                  [--cache-dir DIR]\n"
          "exit codes: 0 graceful drain, 1 bind/listen error, 2 usage,\n"
          "            5 internal failure\n");
}

bool parsePositive(const char *Flag, const char *V, uint64_t &Out) {
  if (V && parsePositiveInt(V, Out))
    return true;
  fprintf(stderr, "error: %s expects a positive integer, got '%s'\n", Flag,
          V ? V : "");
  return false;
}

int runDaemon(int argc, char **argv) {
  ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t N;
    if (Arg == "--socket") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Opts.SocketPath = V;
    } else if (Arg == "--threads") {
      if (!parsePositive("--threads", Next(), N))
        return 2;
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--analysis-threads") {
      if (!parsePositive("--analysis-threads", Next(), N))
        return 2;
      Opts.AnalysisThreads = static_cast<unsigned>(N);
    } else if (Arg == "--max-queue") {
      if (!parsePositive("--max-queue", Next(), N))
        return 2;
      Opts.MaxQueue = static_cast<std::size_t>(N);
    } else if (Arg == "--max-sessions") {
      if (!parsePositive("--max-sessions", Next(), N))
        return 2;
      Opts.MaxSessions = static_cast<std::size_t>(N);
    } else if (Arg == "--request-budget-ms") {
      if (!parsePositive("--request-budget-ms", Next(), Opts.RequestBudgetMs))
        return 2;
    } else if (Arg == "--cache-dir") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Opts.CacheDir = V;
    } else {
      fprintf(stderr, "unknown option %s\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage();
    return 2;
  }

  const std::string SocketPath = Opts.SocketPath;
  SliceServer Server(std::move(Opts));
  Status S = Server.listen();
  if (!S.isOk()) {
    fprintf(stderr, "error: %s\n", S.str().c_str());
    return 1;
  }

  ActiveServer = &Server;
  struct sigaction SA = {};
  SA.sa_handler = onSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // Readiness line: scripts (and the tests) wait for it before
  // connecting. Flushed explicitly — the daemon may be piped.
  printf("thinsliced: listening on %s\n", SocketPath.c_str());
  fflush(stdout);

  int Rc = Server.run();
  ActiveServer = nullptr;
  return Rc;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return runDaemon(argc, argv);
  } catch (const std::exception &E) {
    fprintf(stderr, "error: internal error: %s\n", E.what());
    return 5;
  } catch (...) {
    fprintf(stderr, "error: internal error: unknown exception\n");
    return 5;
  }
}
