//===-- thinslice.cpp - Command-line thin slicer --------------------------------==//
//
// The tool face of the library: compile a ThinJ source file, slice
// from a source line, and print the result — the workflow the paper's
// evaluation simulates (CodeSurfer-style dependence browsing).
//
//   thinslice prog.tsj --line 24                  thin slice
//   thinslice prog.tsj --line 24 --mode trad      traditional slice
//   thinslice prog.tsj --line 24 --alias-depth 1  one aliasing level
//   thinslice prog.tsj --line 24 --expand         fixpoint (= traditional)
//   thinslice prog.tsj --line 24 --forward        forward thin slice
//   thinslice prog.tsj --line 3 --chop 24         thin chop 3 -> 24
//   thinslice prog.tsj --line 24 --context-sensitive
//   thinslice prog.tsj --seeds seeds.txt --threads 4    batched slicing
//   thinslice prog.tsj --run --int 1 --in "John Doe"
//   thinslice prog.tsj --line 24 --dot slice.dot
//   thinslice prog.tsj --dump-ir / --stats
//   thinslice prog.tsj --line 24 --budget-ms 50
//   thinslice prog.tsj --interactive               warm-session REPL
//   thinslice prog.tsj --line 24 --save-snapshot s.tslsnap
//   thinslice prog.tsj --line 24 --load-snapshot s.tslsnap
//   thinslice prog.tsj --line 24 --cache-dir .tsl-cache
//
// All analysis artifacts are owned by an AnalysisSession (see
// pipeline/Session.h): the one-shot paths request them once, and
// --interactive answers repeated `slice <line>` queries against the
// same warm session — identical re-queries are full cache hits, which
// `--stats` (or the interactive `stats` command) makes observable.
//
// Exit codes: 0 success (complete result), 1 file/compile/write error,
// 2 usage error, 3 budget-degraded result, 4 degraded result refused
// by --strict-budget, 5 internal/stage failure (a stage crashed and
// exhausted its retries — distinct from a compile error and from sound
// degradation).
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Runtime.h"
#include "ir/IRPrinter.h"
#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pipeline/Session.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "sdg/SDGDot.h"
#include "slicer/Chop.h"
#include "slicer/Engine.h"
#include "slicer/Expansion.h"
#include "slicer/Report.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include "service/Client.h"
#include "support/Budget.h"
#include "support/ParseInt.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace tsl;

namespace {

struct CliOptions {
  std::string File;
  unsigned Line = 0;
  unsigned ChopSink = 0;
  SliceMode Mode = SliceMode::Thin;
  unsigned AliasDepth = 0;
  bool Expand = false;
  bool Forward = false;
  bool ContextSensitive = false;
  bool NoObjSens = false;
  bool Run = false;
  /// Batched slicing: a file of seed line numbers, fanned out over a
  /// worker pool.
  std::string SeedsFile;
  /// Analysis concurrency for every parallel stage (PDG construction,
  /// mod-ref waves, batched slicing): total threads including the
  /// main one. 0 = hardware_concurrency; 1 = fully sequential, no
  /// pool. Set by --threads, or by its deprecated alias --jobs.
  unsigned Threads = 0;
  bool JobsAliasUsed = false;
  /// Warm-session REPL: answer repeated `slice <line>` queries against
  /// one AnalysisSession.
  bool Interactive = false;
  bool DumpIR = false;
  bool Stats = false;
  bool PtaStats = false;
  bool PtaNaive = false;
  bool PtaNoDelta = false;
  bool PtaNoCycleElim = false;
  WorklistPolicy PtaPolicy = PTAOptions().Policy;
  bool Why = false;
  bool NoRuntime = false;
  std::string DotFile;
  std::vector<std::string> InputLines;
  std::vector<int64_t> InputInts;
  /// Resource governance (tentpole): any of these makes the run
  /// "governed" — a pipeline status report is printed and the exit
  /// code reflects degradation.
  uint64_t BudgetMs = 0;
  uint64_t MaxSdgNodes = 0;
  uint64_t MaxSliceStmts = 0;
  uint64_t RunSteps = 0;
  bool StrictBudget = false;
  std::string FaultSpec;
  /// Function-granular incremental reanalysis for `reload`/`edit` in
  /// the interactive session (off by default: one-shot runs never
  /// re-set the source, so the flag only matters with --interactive).
  bool Incremental = false;
  /// Persistent snapshots: explicit save/load paths, or a
  /// content-addressed cache directory that warm-starts transparently
  /// (and falls back to a cold rebuild on miss/mismatch/corruption).
  std::string SaveSnapshotFile;
  std::string LoadSnapshotFile;
  std::string CacheDir;
  /// Client mode: drive a thinsliced daemon over its Unix socket
  /// instead of analyzing in-process. The daemon keeps the session
  /// warm across invocations (and across clients).
  std::string ConnectSocket;

  bool governed() const {
    // TSL_FAULT arms the injector without any CLI flag; env-armed runs
    // must still report status and map degradation to the exit code.
    return BudgetMs || MaxSdgNodes || MaxSliceStmts || !FaultSpec.empty() ||
           FaultInjector::instance().anyArmed();
  }
};

void usage() {
  fprintf(stderr,
          "usage: thinslice <file.tsj> [--line N] [--mode thin|trad]\n"
          "                 [--seeds FILE] [--threads N] [--interactive]\n"
          "                 [--forward] [--chop N] [--alias-depth K]\n"
          "                 [--expand] [--context-sensitive] [--no-objsens]\n"
          "                 [--run] [--in STR]... [--int N]...\n"
          "                 [--dot FILE] [--dump-ir] [--stats] [--why]\n"
          "                 [--no-runtime] [--pta-stats] [--pta-naive]\n"
          "                 [--pta-no-delta] [--pta-no-cycle-elim]\n"
          "                 [--pta-worklist fifo|lrf|topo]\n"
          "                 [--budget-ms N] [--max-sdg-nodes N]\n"
          "                 [--max-slice-stmts N] [--strict-budget]\n"
          "                 [--fault POINT[:N][:throw|:stall][:once],...\n"
          "                          |all|rand:SEED] [--run-steps N]\n"
          "                 [--incremental on|off]\n"
          "                 [--save-snapshot FILE] [--load-snapshot FILE]\n"
          "                 [--cache-dir DIR] [--connect SOCKET]\n"
          "exit codes: 0 complete, 1 file error, 2 usage,\n"
          "            3 degraded by budget, 4 refused (--strict-budget),\n"
          "            5 internal/stage failure,\n"
          "            6 server busy (--connect; back off and retry)\n");
}

/// CLI wrappers over the shared strict parsers (support/ParseInt.h):
/// same acceptance rules, flag-labelled error reporting.
bool parsePositive(const char *Flag, const char *V, uint64_t &Out) {
  if (V && parsePositiveInt(V, Out))
    return true;
  fprintf(stderr, "error: %s expects a positive integer, got '%s'\n", Flag,
          V ? V : "");
  return false;
}

bool parseNonZero(const char *Flag, const char *V, int64_t &Out) {
  if (V && parseNonZeroInt(V, Out))
    return true;
  fprintf(stderr, "error: %s expects a nonzero integer, got '%s'\n", Flag,
          V ? V : "");
  return false;
}

bool parseArgs(int argc, char **argv, CliOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--line") {
      uint64_t N;
      if (!parsePositive("--line", Next(), N))
        return false;
      Opts.Line = static_cast<unsigned>(N);
    } else if (Arg == "--seeds") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SeedsFile = V;
    } else if (Arg == "--interactive") {
      Opts.Interactive = true;
    } else if (Arg == "--threads" || Arg == "--jobs") {
      uint64_t N;
      if (!parsePositive(Arg.c_str(), Next(), N))
        return false;
      Opts.Threads = static_cast<unsigned>(N);
      Opts.JobsAliasUsed = Arg == "--jobs";
    } else if (Arg == "--chop") {
      uint64_t N;
      if (!parsePositive("--chop", Next(), N))
        return false;
      Opts.ChopSink = static_cast<unsigned>(N);
    } else if (Arg == "--mode") {
      const char *V = Next();
      if (!V)
        return false;
      if (strcmp(V, "thin") == 0)
        Opts.Mode = SliceMode::Thin;
      else if (strcmp(V, "trad") == 0 || strcmp(V, "traditional") == 0)
        Opts.Mode = SliceMode::Traditional;
      else
        return false;
    } else if (Arg == "--alias-depth") {
      uint64_t N;
      if (!parsePositive("--alias-depth", Next(), N))
        return false;
      Opts.AliasDepth = static_cast<unsigned>(N);
    } else if (Arg == "--expand") {
      Opts.Expand = true;
    } else if (Arg == "--forward") {
      Opts.Forward = true;
    } else if (Arg == "--context-sensitive") {
      Opts.ContextSensitive = true;
    } else if (Arg == "--no-objsens") {
      Opts.NoObjSens = true;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg == "--in") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.InputLines.push_back(V);
    } else if (Arg == "--int") {
      int64_t N;
      if (!parseNonZero("--int", Next(), N))
        return false;
      Opts.InputInts.push_back(N);
    } else if (Arg == "--dot") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.DotFile = V;
    } else if (Arg == "--dump-ir") {
      Opts.DumpIR = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--pta-stats") {
      Opts.PtaStats = true;
    } else if (Arg == "--pta-naive") {
      Opts.PtaNaive = true;
    } else if (Arg == "--pta-no-delta") {
      Opts.PtaNoDelta = true;
    } else if (Arg == "--pta-no-cycle-elim") {
      Opts.PtaNoCycleElim = true;
    } else if (Arg == "--pta-worklist") {
      const char *V = Next();
      if (!V)
        return false;
      if (strcmp(V, "fifo") == 0)
        Opts.PtaPolicy = WorklistPolicy::FIFO;
      else if (strcmp(V, "lrf") == 0)
        Opts.PtaPolicy = WorklistPolicy::LRF;
      else if (strcmp(V, "topo") == 0)
        Opts.PtaPolicy = WorklistPolicy::Topo;
      else
        return false;
    } else if (Arg == "--why") {
      Opts.Why = true;
    } else if (Arg == "--no-runtime") {
      Opts.NoRuntime = true;
    } else if (Arg == "--budget-ms") {
      if (!parsePositive("--budget-ms", Next(), Opts.BudgetMs))
        return false;
    } else if (Arg == "--max-sdg-nodes") {
      if (!parsePositive("--max-sdg-nodes", Next(), Opts.MaxSdgNodes))
        return false;
    } else if (Arg == "--max-slice-stmts") {
      if (!parsePositive("--max-slice-stmts", Next(), Opts.MaxSliceStmts))
        return false;
    } else if (Arg == "--run-steps") {
      if (!parsePositive("--run-steps", Next(), Opts.RunSteps))
        return false;
    } else if (Arg == "--strict-budget") {
      Opts.StrictBudget = true;
    } else if (Arg == "--fault") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.FaultSpec = V;
    } else if (Arg == "--incremental") {
      const char *V = Next();
      if (V && strcmp(V, "on") == 0) {
        Opts.Incremental = true;
      } else if (V && strcmp(V, "off") == 0) {
        Opts.Incremental = false;
      } else {
        fprintf(stderr, "error: --incremental expects on|off, got '%s'\n",
                V ? V : "");
        return false;
      }
    } else if (Arg == "--save-snapshot") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SaveSnapshotFile = V;
    } else if (Arg == "--load-snapshot") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.LoadSnapshotFile = V;
    } else if (Arg == "--cache-dir") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.CacheDir = V;
    } else if (Arg == "--connect") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ConnectSocket = V;
    } else if (Arg.rfind("--", 0) == 0) {
      fprintf(stderr, "unknown option %s\n", Arg.c_str());
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return !Opts.File.empty();
}

/// Reports the missing seed and suggests the nearest user-file lines
/// (relative to \p LineOffset) that do carry statements. The message
/// itself is the shared noStatementMessage (slicer/Report.h), so the
/// CLI, REPL, and daemon agree on it.
void reportNoStatement(const Program &P, unsigned UserLine,
                       unsigned LineOffset) {
  fprintf(stderr, "error: %s\n",
          noStatementMessage(P, UserLine, LineOffset).c_str());
}

/// Reads a seeds file: one user-file line number per line, blank lines
/// and '#' comments skipped, anything else a usage error. Returns 0
/// and fills \p Out, or the exit code to return (1 file, 2 usage).
int readSeedsFile(const std::string &Path, std::vector<unsigned> &Out) {
  std::ifstream SeedsIn(Path);
  if (!SeedsIn) {
    fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::string Raw;
  unsigned FileLine = 0;
  while (std::getline(SeedsIn, Raw)) {
    ++FileLine;
    std::size_t Begin = Raw.find_first_not_of(" \t\r");
    if (Begin == std::string::npos || Raw[Begin] == '#')
      continue;
    std::size_t End = Raw.find_last_not_of(" \t\r");
    std::string Tok = Raw.substr(Begin, End - Begin + 1);
    uint64_t N = 0;
    if (!parsePositiveInt(Tok, N)) {
      fprintf(stderr,
              "error: %s:%u: expected a positive line number, got '%s'\n",
              Path.c_str(), FileLine, Tok.c_str());
      return 2;
    }
    Out.push_back(static_cast<unsigned>(N));
  }
  if (Out.empty()) {
    fprintf(stderr, "error: %s contains no seeds\n", Path.c_str());
    return 2;
  }
  return 0;
}

/// The warm-session REPL: reads one command per stdin line and answers
/// slice queries against \p Session without ever rebuilding an
/// artifact a previous query already computed. Commands:
///
///   slice N         backward slice from user-file line N
///   mode thin|trad  switch the slice mode for subsequent queries
///   cs on|off       toggle the context-sensitive representation
///   reload          re-read the current source file
///   edit FILE       switch to FILE as the source (reload follows it)
///   save FILE       write a versioned snapshot of the warm artifacts
///   load FILE       warm-start from a snapshot (cold fallback on error)
///   stats           print per-stage memoization telemetry
///   quit            exit (EOF works too)
///
/// With --incremental on, reload and edit go through the session's
/// function-granular incremental path: unchanged functions keep their
/// compiled artifacts and the analyses update in place (falling back
/// to a cold rebuild whenever that would change any answer). Without
/// it they reset the session. With --stats the telemetry block is
/// also printed on exit.
int runInteractive(AnalysisSession &Session, const CliOptions &Opts,
                   unsigned LineOffset) {
  SliceMode Mode = Opts.Mode;
  std::string CurFile = Opts.File;
  std::string LineBuf;
  while (std::getline(std::cin, LineBuf)) {
    std::istringstream Words(LineBuf);
    std::string Cmd, Arg;
    Words >> Cmd >> Arg;
    if (Cmd.empty())
      continue;
    if (Cmd == "quit" || Cmd == "exit")
      break;
    try {
      if (Cmd == "stats") {
        printf("%s", Session.statsString().c_str());
        continue;
      }
      if (Cmd == "mode") {
        if (Arg == "thin")
          Mode = SliceMode::Thin;
        else if (Arg == "trad" || Arg == "traditional")
          Mode = SliceMode::Traditional;
        else
          fprintf(stderr, "error: mode expects thin|trad\n");
        continue;
      }
      if (Cmd == "cs") {
        if (Arg == "on" || Arg == "off") {
          SDGOptions SO = Session.sdgOptions();
          SO.ContextSensitive = Arg == "on";
          Session.setSDGOptions(SO);
        } else {
          fprintf(stderr, "error: cs expects on|off\n");
        }
        continue;
      }
      if (Cmd == "reload" || Cmd == "edit") {
        if (Cmd == "edit") {
          if (Arg.empty()) {
            fprintf(stderr, "error: edit expects a file path\n");
            continue;
          }
        } else {
          Arg = CurFile;
        }
        std::ifstream In(Arg);
        if (!In) {
          fprintf(stderr, "error: cannot open %s\n", Arg.c_str());
          continue;
        }
        std::stringstream Buf;
        Buf << In.rdbuf();
        CurFile = Arg;
        std::string Src = Opts.NoRuntime ? "" : runtimeLibrarySource();
        Src += Buf.str();
        Session.setSource(std::move(Src));
        if (!Session.program())
          for (const Diagnostic &D : Session.diagnostics().diagnostics()) {
            SourceLoc Loc = D.Loc;
            if (Loc.Line > LineOffset)
              Loc.Line -= LineOffset;
            fprintf(stderr, "%s:%s: error: %s\n", CurFile.c_str(),
                    Loc.str().c_str(), D.Message.c_str());
          }
        continue;
      }
      if (Cmd == "save" || Cmd == "load") {
        if (Arg.empty()) {
          fprintf(stderr, "error: %s expects a file path\n", Cmd.c_str());
          continue;
        }
        Status S = Cmd == "save" ? Session.saveSnapshot(Arg)
                                 : Session.loadSnapshot(Arg);
        if (!S.isOk())
          fprintf(stderr, "error: %s\n", S.str().c_str());
        else
          printf("%s snapshot %s\n", Cmd == "save" ? "saved" : "loaded",
                 Arg.c_str());
        continue;
      }
      if (Cmd == "slice") {
        uint64_t N = 0;
        if (!parsePositiveInt(Arg, N)) {
          fprintf(stderr,
                  "error: slice expects a positive line number, got '%s'\n",
                  Arg.c_str());
          continue;
        }
        Program *P = Session.program();
        if (!P) {
          fprintf(stderr, "error: program does not compile (%s) "
                          "(try reload)\n",
                  Session.lastError().str().c_str());
          continue;
        }
        unsigned UserLine = static_cast<unsigned>(N);
        const Instr *Seed = seedAtLine(*P, UserLine + LineOffset);
        if (!Seed) {
          reportNoStatement(*P, UserLine, LineOffset);
          continue;
        }
        const SliceResult *Slice = Session.sliceBackwardCached(Seed, Mode);
        if (!Slice) {
          // A stage crashed and exhausted its retries (or an upstream
          // artifact could not be built). The session caches nothing
          // on this path, so the next request retries from scratch —
          // keep the REPL alive.
          fprintf(stderr, "error: query failed (%s); session remains "
                          "usable, retry the query\n",
                  Session.lastError().str().c_str());
          continue;
        }
        const char *What = sliceKindName(
            Mode, Session.sdgOptions().ContextSensitive);
        fputs(renderSliceReport(*Slice, What, UserLine, LineOffset).c_str(),
              stdout);
        if (!Slice->complete())
          fprintf(stderr, "warning: slice degraded (%s)\n",
                  Slice->degradedReason().c_str());
        continue;
      }
      fprintf(stderr,
              "error: unknown command '%s' (try: slice N, mode thin|trad, "
              "cs on|off, stats, reload, edit FILE, save FILE, load FILE, "
              "quit)\n",
              Cmd.c_str());
    } catch (const std::exception &E) {
      // Nothing below the session boundary should throw; if something
      // does anyway, report it and keep the REPL alive — the session
      // caches no failed artifact, so the next query starts clean.
      fprintf(stderr, "error: internal error: %s (session remains usable)\n",
              E.what());
    }
  }
  if (Opts.Stats)
    printf("%s", Session.statsString().c_str());
  return 0;
}

/// Maps a daemon response code onto the tool's exit-code taxonomy.
/// ServiceStatus deliberately reuses the exit-code numbers (plus 6 for
/// RETRY), so this is the identity.
int exitCodeFor(ServiceStatus Code) { return static_cast<int>(Code); }

/// Prints a non-Ok daemon response the way the in-process paths print
/// the equivalent local failure, and returns the exit code.
int reportRemoteFailure(const ServiceResponse &Resp) {
  switch (Resp.Code) {
  case ServiceStatus::Error:
    // Compile diagnostics arrive pre-rendered, one per line.
    fputs(Resp.Detail.c_str(), stderr);
    if (!Resp.Detail.empty() && Resp.Detail.back() != '\n')
      fputc('\n', stderr);
    break;
  case ServiceStatus::Retry:
    fprintf(stderr, "error: server busy, back off and retry (%s)\n",
            Resp.Detail.c_str());
    break;
  default:
    fprintf(stderr, "error: %s\n", Resp.Detail.c_str());
    break;
  }
  return exitCodeFor(Resp.Code);
}

/// The remote REPL: the --interactive command set that makes sense
/// against a shared daemon (slice N, mode thin|trad, edit FILE, stats,
/// quit), each answered over the wire by the warm session \p SessionId.
int runConnectInteractive(ServiceClient &C, const std::string &SessionId,
                          const CliOptions &Opts) {
  SliceMode Mode = Opts.Mode;
  std::string LineBuf;
  while (std::getline(std::cin, LineBuf)) {
    std::istringstream Words(LineBuf);
    std::string Cmd, Arg;
    Words >> Cmd >> Arg;
    if (Cmd.empty())
      continue;
    if (Cmd == "quit" || Cmd == "exit")
      break;
    if (Cmd == "mode") {
      if (Arg == "thin")
        Mode = SliceMode::Thin;
      else if (Arg == "trad" || Arg == "traditional")
        Mode = SliceMode::Traditional;
      else
        fprintf(stderr, "error: mode expects thin|trad\n");
      continue;
    }
    ServiceResponse Resp;
    Status S = Status::ok();
    if (Cmd == "slice") {
      uint64_t N = 0;
      if (!parsePositiveInt(Arg, N)) {
        fprintf(stderr,
                "error: slice expects a positive line number, got '%s'\n",
                Arg.c_str());
        continue;
      }
      S = C.slice(SessionId, static_cast<uint32_t>(N), Mode, Resp);
      if (S.isOk() && (Resp.Code == ServiceStatus::Ok ||
                       Resp.Code == ServiceStatus::Degraded)) {
        fputs(Resp.Body.c_str(), stdout);
        if (Resp.Code == ServiceStatus::Degraded)
          fprintf(stderr, "warning: slice degraded (%s)\n",
                  Resp.Detail.c_str());
        continue;
      }
    } else if (Cmd == "edit") {
      if (Arg.empty()) {
        fprintf(stderr, "error: edit expects a file path\n");
        continue;
      }
      std::ifstream In(Arg);
      if (!In) {
        fprintf(stderr, "error: cannot open %s\n", Arg.c_str());
        continue;
      }
      std::stringstream Buf;
      Buf << In.rdbuf();
      std::string Src = Opts.NoRuntime ? "" : runtimeLibrarySource();
      Src += Buf.str();
      S = C.edit(SessionId, Src, Resp);
      if (S.isOk() && Resp.Code == ServiceStatus::Ok)
        continue;
    } else if (Cmd == "stats") {
      S = C.stats(SessionId, Resp);
      if (S.isOk() && Resp.Code == ServiceStatus::Ok) {
        fputs(Resp.Body.c_str(), stdout);
        continue;
      }
    } else {
      fprintf(stderr,
              "error: unknown command '%s' (try: slice N, mode thin|trad, "
              "edit FILE, stats, quit)\n",
              Cmd.c_str());
      continue;
    }
    if (!S.isOk()) {
      // Transport failure: the daemon is gone; a retry loop here would
      // just spin on a dead socket.
      fprintf(stderr, "error: %s\n", S.str().c_str());
      return 5;
    }
    (void)reportRemoteFailure(Resp); // REPL stays alive on protocol errors.
  }
  return 0;
}

/// Client mode: the tool becomes a thin front end for a thinsliced
/// daemon — load (or reuse) the warm session for the file's content,
/// then answer --line / --seeds / --interactive over the wire. Output
/// is byte-identical to the in-process paths because the daemon runs
/// the same renderer over the same artifacts.
int runConnect(const CliOptions &Opts) {
  if (Opts.Run || Opts.ChopSink || Opts.Forward || Opts.Expand ||
      Opts.AliasDepth || Opts.Why || !Opts.DotFile.empty() || Opts.DumpIR ||
      Opts.Stats || Opts.PtaStats || !Opts.SaveSnapshotFile.empty() ||
      !Opts.LoadSnapshotFile.empty() || !Opts.CacheDir.empty() ||
      Opts.governed()) {
    fprintf(stderr,
            "error: --connect supports --line, --seeds, --interactive, "
            "--mode, --context-sensitive, --incremental, and --no-runtime "
            "only (analysis options live with the daemon)\n");
    return 2;
  }
  if (!Opts.Line && Opts.SeedsFile.empty() && !Opts.Interactive) {
    fprintf(stderr,
            "error: --connect needs --line, --seeds, or --interactive\n");
    return 2;
  }

  std::ifstream In(Opts.File);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  unsigned LineOffset = 0;
  std::string Source;
  if (!Opts.NoRuntime) {
    Source = runtimeLibrarySource();
    LineOffset = runtimeLibraryLines();
  }
  Source += Buf.str();

  ServiceClient C;
  Status S = C.connect(Opts.ConnectSocket);
  if (!S.isOk()) {
    fprintf(stderr, "error: %s\n", S.str().c_str());
    return 1;
  }

  ServiceResponse Load;
  S = C.loadSource(Source, Opts.ContextSensitive, LineOffset,
                   Opts.Incremental, Load);
  if (!S.isOk()) {
    fprintf(stderr, "error: %s\n", S.str().c_str());
    return 5;
  }
  if (Load.Code != ServiceStatus::Ok)
    return reportRemoteFailure(Load);
  const std::string SessionId = Load.Body;

  if (Opts.Interactive)
    return runConnectInteractive(C, SessionId, Opts);

  ServiceResponse Resp;
  if (!Opts.SeedsFile.empty()) {
    std::vector<unsigned> SeedUserLines;
    if (int Rc = readSeedsFile(Opts.SeedsFile, SeedUserLines))
      return Rc;
    std::vector<uint32_t> Lines(SeedUserLines.begin(), SeedUserLines.end());
    S = C.batchSlice(SessionId, Lines, Opts.Mode, Resp);
  } else {
    S = C.slice(SessionId, Opts.Line, Opts.Mode, Resp);
  }
  if (!S.isOk()) {
    fprintf(stderr, "error: %s\n", S.str().c_str());
    return 5;
  }
  if (Resp.Code != ServiceStatus::Ok &&
      Resp.Code != ServiceStatus::Degraded)
    return reportRemoteFailure(Resp);
  fputs(Resp.Body.c_str(), stdout);
  if (Resp.Code == ServiceStatus::Degraded)
    fprintf(stderr, "warning: slice degraded (%s)\n", Resp.Detail.c_str());
  return exitCodeFor(Resp.Code);
}

/// The whole tool, minus the crash barrier main() wraps around it.
int runTool(int argc, char **argv) {
  CliOptions Opts;
  if (!parseArgs(argc, argv, Opts)) {
    usage();
    return 2;
  }

  if (!Opts.SeedsFile.empty() &&
      (Opts.Line || Opts.ChopSink || Opts.Forward || Opts.Expand ||
       Opts.AliasDepth || Opts.Why || !Opts.DotFile.empty())) {
    fprintf(stderr, "error: --seeds is incompatible with --line/--chop/"
                    "--forward/--expand/--alias-depth/--why/--dot\n");
    return 2;
  }

  if (Opts.Interactive &&
      (Opts.Line || Opts.ChopSink || Opts.Forward || Opts.Expand ||
       Opts.AliasDepth || Opts.Why || !Opts.DotFile.empty() ||
       !Opts.SeedsFile.empty() || Opts.Run)) {
    fprintf(stderr, "error: --interactive is incompatible with --line/"
                    "--chop/--forward/--expand/--alias-depth/--why/--dot/"
                    "--seeds/--run\n");
    return 2;
  }

  if (!Opts.ConnectSocket.empty())
    return runConnect(Opts);

  if (!Opts.FaultSpec.empty() &&
      !FaultInjector::instance().armFromSpec(Opts.FaultSpec)) {
    std::string Known;
    for (const std::string &P : FaultInjector::knownPoints()) {
      if (!Known.empty())
        Known += ", ";
      Known += P;
    }
    fprintf(stderr, "error: bad --fault spec '%s' (known points: %s)\n",
            Opts.FaultSpec.c_str(), Known.c_str());
    return 2;
  }

  // The shared budget is only materialized when a cap is requested:
  // without flags every stage sees a null budget and runs the exact
  // pre-existing code paths (zero-overhead default).
  AnalysisBudget Budget;
  const AnalysisBudget *B = nullptr;
  if (Opts.BudgetMs || Opts.MaxSdgNodes || Opts.MaxSliceStmts) {
    Budget.BudgetMs = Opts.BudgetMs;
    Budget.MaxSdgNodes = Opts.MaxSdgNodes;
    Budget.MaxSlicePops = Opts.MaxSliceStmts;
    Budget.start();
    B = &Budget;
  }

  std::ifstream In(Opts.File);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  unsigned LineOffset = 0;
  std::string Source;
  if (!Opts.NoRuntime) {
    Source = runtimeLibrarySource();
    LineOffset = runtimeLibraryLines();
  }
  Source += Buf.str();

  // The session owns every analysis artifact from here on: the
  // one-shot paths below request each one exactly once, and
  // --interactive re-queries the same warm session.
  AnalysisSession Session(std::move(Source));
  Session.setBudget(B);
  Session.setIncremental(Opts.Incremental);
  if (Opts.JobsAliasUsed)
    fprintf(stderr,
            "warning: --jobs is deprecated, use --threads (same meaning)\n");
  Session.setThreads(Opts.Threads);
  Program *P = Session.program();
  if (!P) {
    // Report user-file positions (the runtime prefix is an
    // implementation detail).
    for (const Diagnostic &D : Session.diagnostics().diagnostics()) {
      SourceLoc Loc = D.Loc;
      if (Loc.Line > LineOffset)
        Loc.Line -= LineOffset;
      fprintf(stderr, "%s:%s: error: %s\n", Opts.File.c_str(),
              Loc.str().c_str(), D.Message.c_str());
    }
    return 1;
  }

  if (Opts.DumpIR)
    printf("%s", printProgram(*P).c_str());

  if (Opts.Run) {
    InterpOptions RunOpts;
    RunOpts.InputLines = Opts.InputLines;
    RunOpts.InputInts = Opts.InputInts;
    RunOpts.Budget = B;
    if (Opts.RunSteps)
      RunOpts.MaxSteps = Opts.RunSteps;
    InterpResult R = interpret(*P, RunOpts);
    for (const std::string &Line : R.Output)
      printf("%s\n", Line.c_str());
    if (!R.Completed)
      fprintf(stderr, "%s\n", R.Error.c_str());
    if (R.Crashed)
      return 5;
    if (R.HitLimit && !Opts.Line && Opts.SeedsFile.empty() &&
        Opts.DotFile.empty() && !Opts.Stats && !Opts.PtaStats)
      return Opts.StrictBudget ? 4 : 3;
  }

  if (!Opts.Line && Opts.SeedsFile.empty() && Opts.DotFile.empty() &&
      !Opts.Stats && !Opts.PtaStats && !Opts.Interactive &&
      Opts.SaveSnapshotFile.empty() && Opts.CacheDir.empty())
    return 0;

  PTAOptions PtaOpts;
  PtaOpts.ObjSensContainers = !Opts.NoObjSens;
  PtaOpts.DeltaPropagation = !Opts.PtaNoDelta && !Opts.PtaNaive;
  PtaOpts.CycleElimination = !Opts.PtaNoCycleElim && !Opts.PtaNaive;
  if (Opts.PtaNaive)
    PtaOpts.Policy = WorklistPolicy::FIFO;
  else
    PtaOpts.Policy = Opts.PtaPolicy;
  Session.setPTAOptions(PtaOpts);

  SDGOptions SdgOpts;
  SdgOpts.ContextSensitive = Opts.ContextSensitive;
  Session.setSDGOptions(SdgOpts);

  // Warm-start layer: snapshots are only meaningful once the option
  // digests above are final. Loads fall back to a cold rebuild (the
  // warning carries the reason); an explicit save that cannot be
  // written is an internal failure.
  bool CacheWarm = false;
  if (!Opts.CacheDir.empty()) {
    Session.setCacheDir(Opts.CacheDir);
    CacheWarm = Session.tryLoadFromCacheDir();
  }
  if (!Opts.LoadSnapshotFile.empty()) {
    Status L = Session.loadSnapshot(Opts.LoadSnapshotFile);
    if (!L.isOk())
      fprintf(stderr, "warning: %s\n", L.str().c_str());
  }
  if (!Opts.SaveSnapshotFile.empty()) {
    Status S = Session.saveSnapshot(Opts.SaveSnapshotFile);
    if (!S.isOk()) {
      fprintf(stderr, "error: %s\n", S.str().c_str());
      return 5;
    }
  }
  if (!Opts.CacheDir.empty() && !CacheWarm && !B) {
    // Populate the cache for the next process. Best-effort: a full or
    // unwritable cache directory must not fail the query itself.
    Status S = Session.saveToCacheDir();
    if (!S.isOk())
      fprintf(stderr, "warning: %s\n", S.str().c_str());
  }
  // A successful load installed a decoded Program: the pointer taken
  // before the warm-start block is stale now.
  P = Session.program();

  if (Opts.Interactive)
    return runInteractive(Session, Opts, LineOffset);

  // A null artifact here means the stage crashed (injected Throw fault
  // or internal error) and exhausted its retries — exit 5, distinct
  // from a compile error (1) and from sound degradation (3/4).
  auto StageFailed = [&](const char *Stage) {
    fprintf(stderr, "error: %s stage failed: %s\n", Stage,
            Session.lastError().str().c_str());
    return 5;
  };

  PointsToResult *PTA = Session.pointsTo();
  if (!PTA)
    return StageFailed("points-to");

  if (Opts.PtaStats)
    printf("%s", PTA->stats().str().c_str());

  ModRefResult *MR = Opts.ContextSensitive ? Session.modRef() : nullptr;
  if (Opts.ContextSensitive && !MR)
    return StageFailed("mod-ref");
  SDG *G = Session.sdg();
  if (!G)
    return StageFailed("sdg");

  // Governed runs report per-stage status and map degradation onto the
  // exit code; ungoverned runs keep the historical 0/1/2 codes and
  // byte-identical output.
  PipelineStatus Status;
  Status.add(PTA->report());
  if (MR)
    Status.add(MR->report());
  Status.add(G->report());
  auto Finish = [&](const SliceResult *Slice) {
    if (Slice) {
      StageReport SR{"slice",
                     Slice->complete() ? StageStatus::Complete
                                       : StageStatus::Degraded,
                     Slice->degradedReason(),
                     Slice->complete() ? "" : "partial slice", 0, 0};
      Status.add(std::move(SR));
    }
    if (!Opts.governed())
      return 0;
    fprintf(stderr, "%s", Status.str().c_str());
    if (Status.complete())
      return 0;
    if (Opts.StrictBudget) {
      fprintf(stderr, "refusing degraded result (--strict-budget)\n");
      return 4;
    }
    return 3;
  };

  if (Opts.Stats) {
    printf("classes: %zu, reachable methods: %zu, cg nodes: %zu\n",
           P->classes().size(), PTA->callGraph().reachableMethods().size(),
           PTA->callGraph().nodes().size());
    printf("sdg: %u statements, %u heap-param nodes, %u edges\n",
           G->numStmtNodes(), G->numHeapParamNodes(), G->numEdges());
    printf("%s", Session.statsString().c_str());
  }

  if (!Opts.SeedsFile.empty()) {
    std::vector<unsigned> SeedUserLines;
    if (int Rc = readSeedsFile(Opts.SeedsFile, SeedUserLines))
      return Rc;

    std::vector<const Instr *> Seeds;
    bool Missing = false;
    for (unsigned UserLine : SeedUserLines) {
      const Instr *Seed = seedAtLine(*P, UserLine + LineOffset);
      if (!Seed) {
        reportNoStatement(*P, UserLine, LineOffset);
        Missing = true;
      }
      Seeds.push_back(Seed);
    }
    if (Missing)
      return 1;

    SummaryCache Cache;
    SliceEngine Engine(*G, Session.pool());
    BatchOptions BO;
    BO.Mode = Opts.Mode;
    BO.ContextSensitive = Opts.ContextSensitive;
    BO.Jobs = Session.threadsResolved();
    BO.Budget = B;
    BO.Summaries = Opts.ContextSensitive ? &Cache : nullptr;
    std::vector<SliceResult> Results = Engine.sliceBackwardBatch(Seeds, BO);

    const char *What = sliceKindName(Opts.Mode, Opts.ContextSensitive);
    for (std::size_t I = 0; I != Results.size(); ++I) {
      printf("=== seed line %u ===\n", SeedUserLines[I]);
      fputs(renderSliceReport(Results[I], What, SeedUserLines[I], LineOffset)
                .c_str(),
            stdout);
    }
    const BatchStats &St = Engine.stats();
    printf("batch: %u queries (%u unique) on %u worker%s\n", St.Queries,
           St.UniqueQueries, St.Workers, St.Workers == 1 ? "" : "s");

    // Aggregate degradation: one slice stage for the whole batch.
    const SliceResult *Rep = &Results.front();
    for (const SliceResult &Slice : Results)
      if (!Slice.complete()) {
        Rep = &Slice;
        break;
      }
    return Finish(Rep);
  }

  if (!Opts.Line) {
    if (!Opts.DotFile.empty()) {
      std::ofstream Dot(Opts.DotFile);
      Dot << exportDot(*G);
      Dot.flush();
      if (!Dot) {
        fprintf(stderr, "error: cannot write %s\n", Opts.DotFile.c_str());
        return 1;
      }
    }
    return Finish(nullptr);
  }

  // User line numbers are relative to the user's file.
  unsigned AbsLine = Opts.Line + LineOffset;
  const Instr *Seed = seedAtLine(*P, AbsLine);
  if (!Seed) {
    reportNoStatement(*P, Opts.Line, LineOffset);
    return 1;
  }

  SliceResult Slice(nullptr, BitSet());
  std::string What;
  if (Opts.ChopSink) {
    const Instr *Sink = seedAtLine(*P, Opts.ChopSink + LineOffset);
    if (!Sink) {
      reportNoStatement(*P, Opts.ChopSink, LineOffset);
      return 1;
    }
    Slice = chop(*G, Seed, Sink, Opts.Mode, B);
    What = "chop";
  } else if (Opts.Forward) {
    Slice = sliceForward(*G, Seed, Opts.Mode, B);
    What = "forward slice";
  } else if (Opts.ContextSensitive) {
    TabulationSlicer Tab(*G, Opts.Mode, B);
    Slice = Tab.slice(Seed);
    What = "context-sensitive slice";
  } else if (Opts.Expand) {
    ThinExpansion Exp(*G, *PTA, B);
    Slice = Exp.expandToTraditional(Seed);
    What = "fully expanded thin slice";
  } else if (Opts.AliasDepth) {
    ThinExpansion Exp(*G, *PTA, B);
    Slice = Exp.thinSliceWithAliasDepth(Seed, Opts.AliasDepth);
    What = "thin slice (+" + std::to_string(Opts.AliasDepth) +
           " aliasing levels)";
  } else {
    Slice = sliceBackward(*G, Seed, Opts.Mode, B);
    What = Opts.Mode == SliceMode::Thin ? "thin slice" : "traditional slice";
  }

  if (Opts.Why && !Opts.ChopSink && !Opts.Forward) {
    SliceNarration Story = narrateSlice(*G, Seed, Opts.Mode);
    printf("%s", Story.str(LineOffset).c_str());
    return Finish(&Slice);
  }

  fputs(renderSliceReport(Slice, What, Opts.Line, LineOffset).c_str(),
        stdout);

  if (!Opts.DotFile.empty()) {
    DotOptions DO;
    BitSet Nodes = Slice.nodeSet();
    DO.Restrict = &Nodes;
    std::ofstream Dot(Opts.DotFile);
    Dot << exportDot(*G, DO);
    Dot.flush();
    if (!Dot) {
      fprintf(stderr, "error: cannot write %s\n", Opts.DotFile.c_str());
      return 1;
    }
    printf("wrote %s\n", Opts.DotFile.c_str());
  }
  return Finish(&Slice);
}

} // namespace

int main(int argc, char **argv) {
  // Crash barrier: no exception may escape as std::terminate. The
  // library's boundaries are no-throw, so anything landing here is an
  // internal error — report it and exit 5 (never a crash).
  try {
    return runTool(argc, argv);
  } catch (const std::exception &E) {
    fprintf(stderr, "error: internal error: %s\n", E.what());
    return 5;
  } catch (...) {
    fprintf(stderr, "error: internal error: unknown exception\n");
    return 5;
  }
}
