//===-- thinslice.cpp - Command-line thin slicer --------------------------------==//
//
// The tool face of the library: compile a ThinJ source file, slice
// from a source line, and print the result — the workflow the paper's
// evaluation simulates (CodeSurfer-style dependence browsing).
//
//   thinslice prog.tsj --line 24                  thin slice
//   thinslice prog.tsj --line 24 --mode trad      traditional slice
//   thinslice prog.tsj --line 24 --alias-depth 1  one aliasing level
//   thinslice prog.tsj --line 24 --expand         fixpoint (= traditional)
//   thinslice prog.tsj --line 24 --forward        forward thin slice
//   thinslice prog.tsj --line 3 --chop 24         thin chop 3 -> 24
//   thinslice prog.tsj --line 24 --context-sensitive
//   thinslice prog.tsj --run --int 1 --in "John Doe"
//   thinslice prog.tsj --line 24 --dot slice.dot
//   thinslice prog.tsj --dump-ir / --stats
//
//===----------------------------------------------------------------------===//

#include "dyn/Interp.h"
#include "eval/Runtime.h"
#include "ir/IRPrinter.h"
#include "lang/Lower.h"
#include "modref/ModRef.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"
#include "sdg/SDGDot.h"
#include "slicer/Chop.h"
#include "slicer/Expansion.h"
#include "slicer/Report.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace tsl;

namespace {

struct CliOptions {
  std::string File;
  unsigned Line = 0;
  unsigned ChopSink = 0;
  SliceMode Mode = SliceMode::Thin;
  unsigned AliasDepth = 0;
  bool Expand = false;
  bool Forward = false;
  bool ContextSensitive = false;
  bool NoObjSens = false;
  bool Run = false;
  bool DumpIR = false;
  bool Stats = false;
  bool PtaStats = false;
  bool PtaNaive = false;
  bool PtaNoDelta = false;
  bool PtaNoCycleElim = false;
  WorklistPolicy PtaPolicy = PTAOptions().Policy;
  bool Why = false;
  bool NoRuntime = false;
  std::string DotFile;
  std::vector<std::string> InputLines;
  std::vector<int64_t> InputInts;
};

void usage() {
  fprintf(stderr,
          "usage: thinslice <file.tsj> [--line N] [--mode thin|trad]\n"
          "                 [--forward] [--chop N] [--alias-depth K]\n"
          "                 [--expand] [--context-sensitive] [--no-objsens]\n"
          "                 [--run] [--in STR]... [--int N]...\n"
          "                 [--dot FILE] [--dump-ir] [--stats] [--why]\n"
          "                 [--no-runtime] [--pta-stats] [--pta-naive]\n"
          "                 [--pta-no-delta] [--pta-no-cycle-elim]\n"
          "                 [--pta-worklist fifo|lrf|topo]\n");
}

bool parseArgs(int argc, char **argv, CliOptions &Opts) {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--line") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Line = static_cast<unsigned>(atoi(V));
    } else if (Arg == "--chop") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ChopSink = static_cast<unsigned>(atoi(V));
    } else if (Arg == "--mode") {
      const char *V = Next();
      if (!V)
        return false;
      if (strcmp(V, "thin") == 0)
        Opts.Mode = SliceMode::Thin;
      else if (strcmp(V, "trad") == 0 || strcmp(V, "traditional") == 0)
        Opts.Mode = SliceMode::Traditional;
      else
        return false;
    } else if (Arg == "--alias-depth") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.AliasDepth = static_cast<unsigned>(atoi(V));
    } else if (Arg == "--expand") {
      Opts.Expand = true;
    } else if (Arg == "--forward") {
      Opts.Forward = true;
    } else if (Arg == "--context-sensitive") {
      Opts.ContextSensitive = true;
    } else if (Arg == "--no-objsens") {
      Opts.NoObjSens = true;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (Arg == "--in") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.InputLines.push_back(V);
    } else if (Arg == "--int") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.InputInts.push_back(atoll(V));
    } else if (Arg == "--dot") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.DotFile = V;
    } else if (Arg == "--dump-ir") {
      Opts.DumpIR = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--pta-stats") {
      Opts.PtaStats = true;
    } else if (Arg == "--pta-naive") {
      Opts.PtaNaive = true;
    } else if (Arg == "--pta-no-delta") {
      Opts.PtaNoDelta = true;
    } else if (Arg == "--pta-no-cycle-elim") {
      Opts.PtaNoCycleElim = true;
    } else if (Arg == "--pta-worklist") {
      const char *V = Next();
      if (!V)
        return false;
      if (strcmp(V, "fifo") == 0)
        Opts.PtaPolicy = WorklistPolicy::FIFO;
      else if (strcmp(V, "lrf") == 0)
        Opts.PtaPolicy = WorklistPolicy::LRF;
      else if (strcmp(V, "topo") == 0)
        Opts.PtaPolicy = WorklistPolicy::Topo;
      else
        return false;
    } else if (Arg == "--why") {
      Opts.Why = true;
    } else if (Arg == "--no-runtime") {
      Opts.NoRuntime = true;
    } else if (Arg.rfind("--", 0) == 0) {
      fprintf(stderr, "unknown option %s\n", Arg.c_str());
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return !Opts.File.empty();
}

const Instr *seedAtLine(const Program &P, unsigned Line) {
  const Instr *Last = nullptr;
  for (const auto &M : P.methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line == Line)
          Last = I.get();
  return Last;
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Opts;
  if (!parseArgs(argc, argv, Opts)) {
    usage();
    return 2;
  }

  std::ifstream In(Opts.File);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  unsigned LineOffset = 0;
  std::string Source;
  if (!Opts.NoRuntime) {
    Source = runtimeLibrarySource();
    LineOffset = runtimeLibraryLines();
  }
  Source += Buf.str();

  DiagnosticEngine Diag;
  std::unique_ptr<Program> P = compileThinJ(Source, Diag);
  if (!P) {
    // Report user-file positions (the runtime prefix is an
    // implementation detail).
    for (const Diagnostic &D : Diag.diagnostics()) {
      SourceLoc Loc = D.Loc;
      if (Loc.Line > LineOffset)
        Loc.Line -= LineOffset;
      fprintf(stderr, "%s:%s: error: %s\n", Opts.File.c_str(),
              Loc.str().c_str(), D.Message.c_str());
    }
    return 1;
  }

  if (Opts.DumpIR)
    printf("%s", printProgram(*P).c_str());

  if (Opts.Run) {
    InterpOptions RunOpts;
    RunOpts.InputLines = Opts.InputLines;
    RunOpts.InputInts = Opts.InputInts;
    InterpResult R = interpret(*P, RunOpts);
    for (const std::string &Line : R.Output)
      printf("%s\n", Line.c_str());
    if (!R.Completed)
      fprintf(stderr, "%s\n", R.Error.c_str());
  }

  if (!Opts.Line && Opts.DotFile.empty() && !Opts.Stats && !Opts.PtaStats)
    return 0;

  PTAOptions PtaOpts;
  PtaOpts.ObjSensContainers = !Opts.NoObjSens;
  PtaOpts.DeltaPropagation = !Opts.PtaNoDelta && !Opts.PtaNaive;
  PtaOpts.CycleElimination = !Opts.PtaNoCycleElim && !Opts.PtaNaive;
  if (Opts.PtaNaive)
    PtaOpts.Policy = WorklistPolicy::FIFO;
  else
    PtaOpts.Policy = Opts.PtaPolicy;
  std::unique_ptr<PointsToResult> PTA = runPointsTo(*P, PtaOpts);

  if (Opts.PtaStats)
    printf("%s", PTA->stats().str().c_str());

  std::unique_ptr<ModRefResult> MR;
  SDGOptions SdgOpts;
  if (Opts.ContextSensitive) {
    MR = std::make_unique<ModRefResult>(*P, *PTA);
    SdgOpts.ContextSensitive = true;
  }
  std::unique_ptr<SDG> G = buildSDG(*P, *PTA, MR.get(), SdgOpts);

  if (Opts.Stats) {
    printf("classes: %zu, reachable methods: %zu, cg nodes: %zu\n",
           P->classes().size(), PTA->callGraph().reachableMethods().size(),
           PTA->callGraph().nodes().size());
    printf("sdg: %u statements, %u heap-param nodes, %u edges\n",
           G->numStmtNodes(), G->numHeapParamNodes(), G->numEdges());
  }

  if (!Opts.Line) {
    if (!Opts.DotFile.empty()) {
      std::ofstream Dot(Opts.DotFile);
      Dot << exportDot(*G);
    }
    return 0;
  }

  // User line numbers are relative to the user's file.
  unsigned AbsLine = Opts.Line + LineOffset;
  const Instr *Seed = seedAtLine(*P, AbsLine);
  if (!Seed) {
    fprintf(stderr, "error: no statement at line %u\n", Opts.Line);
    return 1;
  }

  SliceResult Slice(nullptr, BitSet());
  std::string What;
  if (Opts.ChopSink) {
    const Instr *Sink = seedAtLine(*P, Opts.ChopSink + LineOffset);
    if (!Sink) {
      fprintf(stderr, "error: no statement at line %u\n", Opts.ChopSink);
      return 1;
    }
    Slice = chop(*G, Seed, Sink, Opts.Mode);
    What = "chop";
  } else if (Opts.Forward) {
    Slice = sliceForward(*G, Seed, Opts.Mode);
    What = "forward slice";
  } else if (Opts.ContextSensitive) {
    TabulationSlicer Tab(*G, Opts.Mode);
    Slice = Tab.slice(Seed);
    What = "context-sensitive slice";
  } else if (Opts.Expand) {
    ThinExpansion Exp(*G, *PTA);
    Slice = Exp.expandToTraditional(Seed);
    What = "fully expanded thin slice";
  } else if (Opts.AliasDepth) {
    ThinExpansion Exp(*G, *PTA);
    Slice = Exp.thinSliceWithAliasDepth(Seed, Opts.AliasDepth);
    What = "thin slice (+" + std::to_string(Opts.AliasDepth) +
           " aliasing levels)";
  } else {
    Slice = sliceBackward(*G, Seed, Opts.Mode);
    What = Opts.Mode == SliceMode::Thin ? "thin slice" : "traditional slice";
  }

  if (Opts.Why && !Opts.ChopSink && !Opts.Forward) {
    SliceNarration Story = narrateSlice(*G, Seed, Opts.Mode);
    printf("%s", Story.str(LineOffset).c_str());
    return 0;
  }

  printf("%s from line %u: %u statements, %zu source lines\n",
         What.c_str(), Opts.Line, Slice.sizeStmts(),
         Slice.sourceLines().size());
  for (const SourceLine &L : Slice.sourceLines()) {
    unsigned Shown = L.Line > LineOffset ? L.Line - LineOffset : L.Line;
    const char *Where = L.Line > LineOffset ? "" : " [runtime]";
    printf("  %s:%u%s\n", L.M->qualifiedName(P->strings()).c_str(), Shown,
           Where);
  }

  if (!Opts.DotFile.empty()) {
    DotOptions DO;
    BitSet Nodes = Slice.nodeSet();
    DO.Restrict = &Nodes;
    std::ofstream Dot(Opts.DotFile);
    Dot << exportDot(*G, DO);
    printf("wrote %s\n", Opts.DotFile.c_str());
  }
  return 0;
}
