//===-- bench_incremental.cpp - Edit-to-slice incremental reanalysis ------------==//
//
// The tentpole claim of the incremental-reanalysis PR: after a
// one-function edit, an incremental session answers the next slice
// query >= 5x faster than a cold rebuild of the same pad-12 workload.
// The incremental path diffs the source at function granularity,
// relowers only the edited body, retracts and replays its points-to
// constraints, and patches the SDG in place — the benchmark measures
// the full edit-to-slice latency either way, so artifact reuse is the
// only difference between the two configurations.
//
//   ./bench/bench_incremental
//   ./bench/bench_incremental --benchmark_out=BENCH_incremental.json
//                             --benchmark_out_format=json
//
// The edit alternates the constant in one reachable top-level helper
// (a real semantic change, not whitespace) so every iteration performs
// a genuine update; the differential tests (tests/incremental_test.cpp)
// prove both configurations produce byte-identical slices.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Slicer.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace tsl;

namespace {

/// Same workload as bench_parallel_pipeline: the largest pad of the
/// scalability sweep, so the cold-rebuild cost being avoided is the
/// realistic one.
constexpr unsigned PAD = 12;

/// A reachable top-level helper appended to the padded program; the
/// benchmark edits its body. Top-level (not a pad method) so the edit
/// never lands inside a collapsed points-to SCC, which would take the
/// sound full-resolve fallback and measure the wrong thing.
const char *EditedHelper = "def benchTweak(n: int): int {\n"
                           "  var t = n + 1;\n"
                           "  return t;\n"
                           "}\n";

std::string workloadSource(int Variant) {
  static const std::string Base = [] {
    std::string S = padWorkload(debuggingCases().front().Prog, "BI", PAD, 6)
                        .Source;
    // Call the helper from main so it is reachable and participates
    // in the analyses.
    const std::string Needle = "def main() {\n";
    size_t Pos = S.find(Needle);
    S.insert(Pos + Needle.size(), "  print(benchTweak(readInt()));\n");
    S += EditedHelper;
    return S;
  }();
  std::string S = Base;
  if (Variant) {
    size_t Pos = S.find("var t = n + 1;");
    S.replace(Pos, 14, "var t = n + 2;"); // Same length: pure body edit.
  }
  return S;
}

const Instr *seedInMain(AnalysisSession &S) {
  // Last print in main: a stable seed that exists in both variants.
  const Instr *Seed = nullptr;
  for (const auto &M : S.program()->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line)
          Seed = I.get();
  return Seed;
}

/// Edit-to-slice latency, incremental: the session is warm on variant
/// A; flip to variant B (one function body changed) and re-slice.
double incrementalMs(AnalysisSession &S, int &Variant) {
  Variant ^= 1;
  auto T0 = std::chrono::steady_clock::now();
  S.setSource(workloadSource(Variant));
  const SliceResult *R = S.sliceBackwardCached(seedInMain(S), SliceMode::Thin);
  benchmark::DoNotOptimize(R);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// Edit-to-slice latency, cold: a fresh session pays every stage.
double coldMs(int &Variant) {
  Variant ^= 1;
  auto T0 = std::chrono::steady_clock::now();
  AnalysisSession S(workloadSource(Variant));
  const SliceResult *R = S.sliceBackwardCached(seedInMain(S), SliceMode::Thin);
  benchmark::DoNotOptimize(R);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

void BM_EditToSliceIncremental(benchmark::State &State) {
  AnalysisSession S(workloadSource(0));
  S.setIncremental(true);
  benchmark::DoNotOptimize(
      S.sliceBackwardCached(seedInMain(S), SliceMode::Thin));
  int Variant = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(incrementalMs(S, Variant));
  const AnalysisSession::IncrementalStats &IS = S.incrementalStats();
  State.counters["fn_reused"] =
      static_cast<double>(IS.FunctionsReused) /
      std::max<uint64_t>(1, IS.Applied);
  State.counters["cold_fallbacks"] = static_cast<double>(IS.ColdFallbacks);
  State.counters["stage_fallbacks"] = static_cast<double>(IS.StageFallbacks);
}
BENCHMARK(BM_EditToSliceIncremental)->Unit(benchmark::kMillisecond);

void BM_EditToSliceCold(benchmark::State &State) {
  int Variant = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(coldMs(Variant));
}
BENCHMARK(BM_EditToSliceCold)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Incremental reanalysis: edit-to-slice ===\n\n");

  // Median-of-7 head-to-head, one warm-up each (cold sessions are
  // noisy; the incremental path is fast enough that scheduler jitter
  // matters).
  int ColdVariant = 0;
  (void)coldMs(ColdVariant);
  std::vector<double> Cold;
  for (int I = 0; I != 7; ++I)
    Cold.push_back(coldMs(ColdVariant));
  std::sort(Cold.begin(), Cold.end());

  AnalysisSession S(workloadSource(0));
  S.setIncremental(true);
  benchmark::DoNotOptimize(
      S.sliceBackwardCached(seedInMain(S), SliceMode::Thin));
  int IncVariant = 0;
  (void)incrementalMs(S, IncVariant);
  std::vector<double> Inc;
  for (int I = 0; I != 7; ++I)
    Inc.push_back(incrementalMs(S, IncVariant));
  std::sort(Inc.begin(), Inc.end());

  const double ColdMed = Cold[Cold.size() / 2];
  const double IncMed = Inc[Inc.size() / 2];
  const double Speedup = IncMed > 0 ? ColdMed / IncMed : 0;
  const AnalysisSession::IncrementalStats &IS = S.incrementalStats();
  printf("workload: nanoxml pad %u, one-function body edit\n", PAD);
  printf("cold rebuild:        %8.3f ms edit-to-slice\n", ColdMed);
  printf("incremental session: %8.3f ms edit-to-slice\n", IncMed);
  printf("speedup: %.2fx %s\n", Speedup,
         Speedup >= 5.0 ? "(>= 5x target met)" : "(below 5x target!)");
  printf("reuse: %llu updates applied, %llu cold fallbacks, "
         "%llu stage fallbacks\n%s\n",
         static_cast<unsigned long long>(IS.Applied),
         static_cast<unsigned long long>(IS.ColdFallbacks),
         static_cast<unsigned long long>(IS.StageFallbacks),
         S.statsString().c_str());

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
