//===-- bench_slice_throughput.cpp - Batched slice-query throughput -------------==//
//
// The PR-3 tentpole claim: a 100-seed batch through SliceEngine beats
// 100 sequential legacy (edge-record) single-seed slices by >= 2x
// queries/sec on the largest scalability workload. Three effects are
// measured separately so the breakdown stays visible:
//
//  - the CSR traversal (sliceBackward on the finalized graph) vs the
//    legacy adjacency walk that touches an edge record per step;
//  - the batch engine itself: seed dedup + one shared budget gate
//    (worker counts 1 and 4 -- on a single-core host the 4-worker
//    number mostly demonstrates that threading does not regress);
//  - cross-query summary caching in context-sensitive mode: a cold
//    batch pays the tabulation summary fixpoint, a warm batch reuses
//    it from the SummaryCache.
//
//   ./bench/bench_slice_throughput
//   ./bench/bench_slice_throughput --benchmark_out=BENCH_slice_throughput.json
//                                  --benchmark_out_format=json
//
// The workload is the nanoxml model padded to the largest size the
// scalability sweep uses (pad 12), seeded with 100 statements spread
// evenly over the program by collectSliceSeeds.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"
#include "slicer/Tabulation.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace tsl;

namespace {

/// Largest pad size of the scalability sweep (bench_scalability).
constexpr unsigned PAD = 12;
constexpr unsigned NUM_SEEDS = 100;

/// One warm session for every benchmark in this binary; the raw
/// pointers borrow from it.
struct Built {
  std::unique_ptr<AnalysisSession> S;
  SDG *G = nullptr;
  std::vector<const Instr *> Seeds;
};

Built &builtOnce() {
  static Built B = [] {
    Built Out;
    WorkloadProgram W = padWorkload(debuggingCases().front().Prog, "TP", PAD, 6);
    Out.S = std::make_unique<AnalysisSession>(W.Source);
    Out.G = Out.S->sdg();
    Out.G->finalize();
    Out.Seeds = collectSliceSeeds(*Out.S->program(), NUM_SEEDS);
    return Out;
  }();
  return B;
}

/// Baseline: N independent legacy single-seed slices, exactly what a
/// pre-PR-3 caller scripting `thinslice --line` in a loop paid.
void BM_SeqLegacy(benchmark::State &State) {
  Built &B = builtOnce();
  for (auto _ : State)
    for (const Instr *Seed : B.Seeds) {
      SliceResult S = sliceBackwardLegacy(*B.G, Seed, SliceMode::Thin);
      benchmark::DoNotOptimize(S);
    }
  State.counters["seeds"] = NUM_SEEDS;
}
BENCHMARK(BM_SeqLegacy)->Unit(benchmark::kMillisecond);

/// Same N sequential queries on the CSR traversal (no engine): the
/// graph-layout share of the win.
void BM_SeqCSR(benchmark::State &State) {
  Built &B = builtOnce();
  for (auto _ : State)
    for (const Instr *Seed : B.Seeds) {
      SliceResult S = sliceBackward(*B.G, Seed, SliceMode::Thin);
      benchmark::DoNotOptimize(S);
    }
  State.counters["seeds"] = NUM_SEEDS;
}
BENCHMARK(BM_SeqCSR)->Unit(benchmark::kMillisecond);

/// The batch engine; Arg = worker count.
void BM_Batch(benchmark::State &State) {
  Built &B = builtOnce();
  SliceEngine Engine(*B.G);
  BatchOptions Opts;
  Opts.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    auto R = Engine.sliceBackwardBatch(B.Seeds, Opts);
    benchmark::DoNotOptimize(R);
  }
  State.counters["seeds"] = NUM_SEEDS;
  State.counters["unique"] = Engine.stats().UniqueQueries;
}
BENCHMARK(BM_Batch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// Context-sensitive batch with a cold cache: every iteration pays the
/// summary fixpoint again.
void BM_BatchCS_ColdSummaries(benchmark::State &State) {
  Built &B = builtOnce();
  SliceEngine Engine(*B.G);
  for (auto _ : State) {
    SummaryCache Cache; // fresh per iteration: always a miss
    BatchOptions Opts;
    Opts.ContextSensitive = true;
    Opts.Jobs = 1;
    Opts.Summaries = &Cache;
    auto R = Engine.sliceBackwardBatch(B.Seeds, Opts);
    benchmark::DoNotOptimize(R);
  }
  State.counters["seeds"] = NUM_SEEDS;
}
BENCHMARK(BM_BatchCS_ColdSummaries)->Unit(benchmark::kMillisecond);

/// Same batch against a warmed cross-query cache: the fixpoint cost
/// amortizes away, leaving only the per-seed traversals.
void BM_BatchCS_WarmSummaries(benchmark::State &State) {
  Built &B = builtOnce();
  SliceEngine Engine(*B.G);
  static SummaryCache Cache;
  BatchOptions Opts;
  Opts.ContextSensitive = true;
  Opts.Jobs = 1;
  Opts.Summaries = &Cache;
  Engine.sliceBackwardBatch(B.Seeds, Opts); // warm
  for (auto _ : State) {
    auto R = Engine.sliceBackwardBatch(B.Seeds, Opts);
    benchmark::DoNotOptimize(R);
  }
  State.counters["seeds"] = NUM_SEEDS;
  State.counters["cache_hits"] = static_cast<double>(Cache.hits());
}
BENCHMARK(BM_BatchCS_WarmSummaries)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Batched slice-query engine: throughput ===\n\n");

  // Head-to-head summary on the acceptance configuration: 100 seeds,
  // sequential legacy vs one batch. The benchmark timings below are
  // the authoritative wall times; this is the one-glance number.
  Built &B = builtOnce();
  ThroughputRow Row =
      runSliceThroughput(*B.G, B.Seeds, SliceMode::Thin, /*Jobs=*/1);
  printf("workload: nanoxml pad %u, %u seeds (%u unique)\n", PAD, Row.Seeds,
         Row.UniqueSeeds);
  printf("sequential legacy: %8.3f ms  (%.0f queries/sec)\n", Row.SeqLegacyMs,
         Row.Seeds * 1000.0 / Row.SeqLegacyMs);
  printf("sequential CSR:    %8.3f ms  (%.0f queries/sec)\n", Row.SeqMs,
         Row.Seeds * 1000.0 / Row.SeqMs);
  printf("engine batch:      %8.3f ms  (%.0f queries/sec)\n", Row.BatchMs,
         Row.Seeds * 1000.0 / Row.BatchMs);
  printf("batch vs sequential legacy: %.2fx queries/sec %s\n\n", Row.Speedup,
         Row.Speedup >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)");

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
