//===-- bench_parallel_pipeline.cpp - End-to-end parallel pipeline --------------==//
//
// The PR-6 tentpole claim: the whole analysis pipeline — compile,
// points-to, mod-ref, SDG construction, and a 100-seed slice batch —
// on a shared work-stealing pool at `--threads 4` beats `--threads 1`
// by >= 2x end-to-end on the largest scalability workload. The
// parallel stages are the per-clone intra-edge phase of the SDG
// builder, the bottom-up SCC waves of the mod-ref fixpoint, and the
// engine's batch fan-out; every artifact is byte-identical across
// thread counts (tests/parallel_test.cpp), so the two configurations
// do the same work.
//
//   ./bench/bench_parallel_pipeline
//   ./bench/bench_parallel_pipeline --benchmark_out=BENCH_parallel_pipeline.json
//                                   --benchmark_out_format=json
//
// Honesty note: the speedup is bounded by the host's core count
// (reported as num_cpus in the JSON context and as a counter). On a
// single-core host the 4-thread number demonstrates that the pool
// does not regress, not that it speeds up — the summary line below
// says which.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Engine.h"
#include "slicer/Slicer.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace tsl;

namespace {

/// Largest pad size of the scalability sweep (bench_scalability).
constexpr unsigned PAD = 12;
constexpr unsigned NUM_SEEDS = 100;

const std::string &workloadSource() {
  static const std::string Source =
      padWorkload(debuggingCases().front().Prog, "PP", PAD, 6).Source;
  return Source;
}

/// One cold end-to-end pipeline run at \p Threads: everything a
/// `thinslice --threads N` invocation pays after argv parsing.
double pipelineMs(unsigned Threads) {
  auto T0 = std::chrono::steady_clock::now();
  AnalysisSession S(workloadSource());
  S.setThreads(Threads);
  SliceEngine *E = S.engine();
  std::vector<const Instr *> Seeds =
      collectSliceSeeds(*S.program(), NUM_SEEDS);
  BatchOptions BO;
  BO.Jobs = Threads;
  auto R = E->sliceBackwardBatch(Seeds, BO);
  benchmark::DoNotOptimize(R);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// Arg = thread count. Each iteration is a cold session: the pipeline
/// stages all rerun, nothing is served from a warm cache.
void BM_PipelineEndToEnd(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(pipelineMs(Threads));
  // Named req_threads: plain "threads" collides with the harness's
  // own per-benchmark threads field and yields a duplicate JSON key.
  State.counters["req_threads"] = Threads;
  State.counters["num_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  State.counters["seeds"] = NUM_SEEDS;
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// The SDG-build share alone (points-to held warm): the stage the
/// per-clone intra-edge phase parallelizes.
void BM_SdgBuild(benchmark::State &State) {
  const unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    AnalysisSession S(workloadSource());
    S.setThreads(Threads);
    benchmark::DoNotOptimize(S.modRef()); // warm everything up to the SDG
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.sdg());
  }
  State.counters["req_threads"] = Threads;
}
BENCHMARK(BM_SdgBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Parallel analysis pipeline: end-to-end ===\n\n");

  const unsigned Cpus = std::thread::hardware_concurrency();
  // One warm-up to pull the workload source and any lazy statics out
  // of the measurement, then a median-of-5 head-to-head (single cold
  // runs are too noisy to headline).
  (void)pipelineMs(1);
  auto Median = [](unsigned Threads) {
    std::vector<double> Ms;
    for (int I = 0; I != 5; ++I)
      Ms.push_back(pipelineMs(Threads));
    std::sort(Ms.begin(), Ms.end());
    return Ms[Ms.size() / 2];
  };
  const double Seq = Median(1);
  const double Par = Median(4);
  const double Speedup = Par > 0 ? Seq / Par : 0;
  printf("workload: nanoxml pad %u, %u seeds, host cpus %u\n", PAD, NUM_SEEDS,
         Cpus);
  printf("--threads 1: %8.3f ms end-to-end\n", Seq);
  printf("--threads 4: %8.3f ms end-to-end\n", Par);
  printf("speedup: %.2fx %s\n\n", Speedup,
         Speedup >= 2.0      ? "(>= 2x target met)"
         : Cpus < 2          ? "(below 2x target -- single-core host, "
                               "threading cannot speed up; see num_cpus)"
                             : "(below 2x target!)");

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
