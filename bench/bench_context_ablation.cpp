//===-- bench_context_ablation.cpp - Sec. 6.1 context-sensitivity ablation ------==//
//
// Reproduces the paper's observation motivating the choice of the
// context-insensitive algorithm (Sec. 6.1): on nanoxml-1, context
// sensitivity reduces the traditional slice from 8067 to 381
// statements, but the breadth-first inspection count only drops from
// 32 to 26 — so the expensive representation does not pay off for
// realistic tool usage.
//
// Expected shape here: the context-sensitive slices are substantially
// smaller in source lines while the BFS inspection counts are nearly
// unchanged.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "slicer/Tabulation.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace tsl;

namespace {

void BM_ContextAblation(benchmark::State &State) {
  for (auto _ : State) {
    auto Rows = runContextAblation();
    benchmark::DoNotOptimize(Rows);
  }
}
BENCHMARK(BM_ContextAblation)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: context-sensitivity ablation ===\n\n");
  printf("%s\n", formatAblation(runContextAblation()).c_str());
  printf("(paper: nanoxml-1 slice 8067 -> 381 statements, BFS 32 -> 26)\n\n");

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
