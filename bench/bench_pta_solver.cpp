//===-- bench_pta_solver.cpp - Naive vs. optimized Andersen solver --------------==//
//
// The pointer analysis dominates end-to-end slicing cost (paper
// Sec. 6.1 and bench_scalability), so this harness pits the naive
// full-set FIFO solver against the optimized one (difference
// propagation + lazy cycle elimination + priority worklist) on a
// points-to-intensive workload padded to several sizes with
// padWorkload. SolverStats are exported as benchmark counters so
// propagation-count reductions are visible next to the wall-time
// speedup:
//
//   ./bench/bench_pta_solver
//   ./bench/bench_pta_solver --benchmark_out=BENCH_pta_solver.json
//                            --benchmark_out_format=json
//
// The base program is generated, not hand-written: RING distinct
// Cell allocation sites linked into a ring, each seeded with its own
// Item allocation, a traversal loop that mixes every item set into
// every cell's item field, and a ring of local-to-local copies closed
// back on itself. Points-to sets grow to hundreds of objects and the
// copy ring is a genuine SCC, so the naive solver's full-set
// repropagation does super-linear work that difference propagation
// and cycle collapsing avoid. padWorkload then wraps the core in
// realistic surrounding code mass, as library code does for the
// paper's benchmarks.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

using namespace tsl;

namespace {

/// Number of distinct Cell/Item allocation sites in the generated
/// core. Points-to sets in the core reach this many objects, so it
/// directly controls how much repropagation the naive solver does.
constexpr unsigned RING = 320;

/// Largest padWorkload size benchmarked; the head-to-head summary in
/// main() runs on this one.
constexpr unsigned MAX_PAD = 24;

std::string solverStressBody() {
  std::string B;
  B += "class Cell {\n  var item: Object;\n  var next: Cell;\n}\n";
  for (unsigned I = 0; I != RING; ++I)
    B += "class Item" + std::to_string(I) + " { }\n";
  B += "def main() {\n";
  // RING distinct cells linked into a ring of next fields.
  for (unsigned I = 0; I != RING; ++I)
    B += "  var c" + std::to_string(I) + " = new Cell();\n";
  for (unsigned I = 0; I != RING; ++I)
    B += "  c" + std::to_string(I) + ".next = c" +
         std::to_string((I + 1) % RING) + ";\n";
  // Each cell seeded with its own item object.
  for (unsigned I = 0; I != RING; ++I)
    B += "  c" + std::to_string(I) + ".item = new Item" + std::to_string(I) +
         "();\n";
  // Traversal: cur's set grows one cell per solver round (the load
  // constraint feeds the phi back), and the item stores smear every
  // item set across every cell's item field.
  B += "  var cur = c0;\n"
       "  for (var i = 0; i < 1000; i = i + 1) {\n"
       "    var nxt = cur.next;\n"
       "    nxt.item = cur.item;\n"
       "    cur = nxt;\n"
       "  }\n";
  // A closed ring of local-to-local copies: a genuine copy-edge SCC
  // holding a large set. Lazy cycle detection collapses it to one
  // node; the naive solver keeps pumping full sets around it.
  B += "  var a0 = cur;\n";
  for (unsigned I = 1; I != RING; ++I)
    B += "  var a" + std::to_string(I) + " = a" + std::to_string(I - 1) +
         ";\n";
  B += "  a0 = a" + std::to_string(RING - 1) + ";\n";
  B += "  print(\"stress done\");\n}\n";
  return B;
}

/// One compiled padded workload per pad size, shared by all configs.
Program &programForPad(unsigned Pad) {
  static std::map<unsigned, std::unique_ptr<Program>> Cache;
  auto It = Cache.find(Pad);
  if (It == Cache.end()) {
    WorkloadProgram Base = makeWorkload("solver-stress", solverStressBody());
    WorkloadProgram W =
        padWorkload(Base, "PS" + std::to_string(Pad), Pad, 6);
    DiagnosticEngine Diag;
    std::unique_ptr<Program> P = compileThinJ(W.Source, Diag);
    It = Cache.emplace(Pad, std::move(P)).first;
  }
  return *It->second;
}

PTAOptions naiveOpts() {
  PTAOptions O;
  O.DeltaPropagation = false;
  O.CycleElimination = false;
  O.Policy = WorklistPolicy::FIFO;
  return O;
}

PTAOptions deltaOnlyOpts() {
  PTAOptions O;
  O.DeltaPropagation = true;
  O.CycleElimination = false;
  O.Policy = WorklistPolicy::FIFO;
  return O;
}

PTAOptions optimizedOpts(WorklistPolicy Policy = WorklistPolicy::Topo) {
  PTAOptions O;
  O.DeltaPropagation = true;
  O.CycleElimination = true;
  O.Policy = Policy;
  return O;
}

void reportCounters(benchmark::State &State, const SolverStats &S) {
  State.counters["nodes"] = static_cast<double>(S.NumNodes);
  State.counters["rep_nodes"] = static_cast<double>(S.NumRepNodes);
  State.counters["copy_edges"] = static_cast<double>(S.NumCopyEdges);
  State.counters["objects"] = static_cast<double>(S.NumObjects);
  State.counters["pops"] = static_cast<double>(S.WorklistPops);
  State.counters["propagations"] = static_cast<double>(S.Propagations);
  State.counters["nochange_props"] =
      static_cast<double>(S.NoChangePropagations);
  State.counters["delta_bits"] = static_cast<double>(S.DeltaBitsMoved);
  State.counters["cons_evals"] = static_cast<double>(S.ConstraintEvals);
  State.counters["cycles_collapsed"] = static_cast<double>(S.CyclesCollapsed);
  State.counters["nodes_merged"] = static_cast<double>(S.NodesMerged);
}

void runSolverBench(benchmark::State &State, const PTAOptions &Opts) {
  Program &P = programForPad(static_cast<unsigned>(State.range(0)));
  SolverStats Last;
  for (auto _ : State) {
    std::unique_ptr<PointsToResult> R = runPointsTo(P, Opts);
    Last = R->stats();
    benchmark::DoNotOptimize(R);
  }
  reportCounters(State, Last);
}

void BM_SolverNaive(benchmark::State &State) {
  runSolverBench(State, naiveOpts());
}
BENCHMARK(BM_SolverNaive)->Arg(0)->Arg(8)->Arg(16)->Arg(MAX_PAD)
    ->Unit(benchmark::kMillisecond);

void BM_SolverDeltaOnly(benchmark::State &State) {
  runSolverBench(State, deltaOnlyOpts());
}
BENCHMARK(BM_SolverDeltaOnly)->Arg(0)->Arg(8)->Arg(16)->Arg(MAX_PAD)
    ->Unit(benchmark::kMillisecond);

void BM_SolverOptimized(benchmark::State &State) {
  runSolverBench(State, optimizedOpts());
}
BENCHMARK(BM_SolverOptimized)->Arg(0)->Arg(8)->Arg(16)->Arg(MAX_PAD)
    ->Unit(benchmark::kMillisecond);

// Worklist-policy ablation: least-recently-fired degenerates to
// one-hop-per-pop round-robin on the copy ring and loses badly to the
// topological order -- kept here so the gap stays measured.
void BM_SolverOptimizedLRF(benchmark::State &State) {
  runSolverBench(State, optimizedOpts(WorklistPolicy::LRF));
}
BENCHMARK(BM_SolverOptimizedLRF)->Arg(0)->Arg(8)->Arg(16)->Arg(MAX_PAD)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Andersen solver: naive vs. optimized ===\n\n");

  // Head-to-head on the largest padded workload, work counters
  // included (the benchmark timings below are the authoritative wall
  // times; this is the one-glance summary).
  Program &P = programForPad(MAX_PAD);
  SolverStats Naive, Opt;
  {
    std::unique_ptr<PointsToResult> R = runPointsTo(P, naiveOpts());
    Naive = R->stats();
  }
  {
    std::unique_ptr<PointsToResult> R = runPointsTo(P, optimizedOpts());
    Opt = R->stats();
  }
  printf("naive (full-set, FIFO):\n%s\n", Naive.str().c_str());
  printf("optimized (delta + LCD + topo worklist):\n%s\n", Opt.str().c_str());
  if (Opt.SolveSeconds > 0 && Opt.Propagations > 0 && Opt.DeltaBitsMoved > 0)
    printf("speedup: %.2fx wall, %.2fx fewer propagations, "
           "%.2fx fewer delta bits moved\n\n",
           Naive.SolveSeconds / Opt.SolveSeconds,
           static_cast<double>(Naive.Propagations) / Opt.Propagations,
           static_cast<double>(Naive.DeltaBitsMoved) / Opt.DeltaBitsMoved);

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
