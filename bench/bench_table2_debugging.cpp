//===-- bench_table2_debugging.cpp - Table 2: locating bugs ---------------------==//
//
// Regenerates the paper's Table 2 (debugging experiment, Sec. 6.2):
// for each injected bug, the number of statements inspected under
// breadth-first exploration until the bug is found, for thin vs
// traditional slicing, with the NoObjSens ablation columns, plus the
// count of manually identified control dependences charged to both.
//
// Paper reference points: ratios 1x (trivial bugs) to 4.5x
// (nanoxml container bugs), overall 3.3x; NoObjSens degrades the
// container-heavy rows up to 17x; thin average 11.5 statements.
// Expected shape here: trivial rows stay 1-2, container rows carry the
// largest ratios, NoObjSens strictly degrades container rows, and one
// xml-security row is excluded because no slicer helps.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "slicer/Inspection.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace tsl;

namespace {

void BM_DebuggingExperiment(benchmark::State &State) {
  for (auto _ : State) {
    auto Rows = runDebuggingExperiment();
    benchmark::DoNotOptimize(Rows);
  }
}
BENCHMARK(BM_DebuggingExperiment)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: Table 2 (debugging) ===\n\n");
  printf("%s\n",
         formatInspectionTable("Table 2: locating bugs (BFS inspection counts)",
                               runDebuggingExperiment())
             .c_str());

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
