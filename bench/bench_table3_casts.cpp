//===-- bench_table3_casts.cpp - Table 3: understanding tough casts -------------==//
//
// Regenerates the paper's Table 3 (program understanding experiment,
// Sec. 6.3): for each tough cast — a downcast the pointer analysis
// cannot verify — the number of statements inspected until the safety
// witnesses (the tag writes / container add sites) are found.
//
// Paper reference points: ratios 1.17x (jess) to 34x (javac), overall
// 9.4x; thin average 29.3 statements; jack's NoObjSens counts blow up
// 5.9-16.9x. Expected shape here: javac carries the largest ratios
// (the desired set spans every constructor), jack shows the NoObjSens
// degradation, jess/mtrt stay small.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace tsl;

namespace {

void BM_ToughCastExperiment(benchmark::State &State) {
  for (auto _ : State) {
    auto Rows = runToughCastExperiment();
    benchmark::DoNotOptimize(Rows);
  }
}
BENCHMARK(BM_ToughCastExperiment)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: Table 3 (tough casts) ===\n\n");
  printf("%s\n",
         formatInspectionTable(
             "Table 3: understanding tough casts (BFS inspection counts)",
             runToughCastExperiment())
             .c_str());

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
