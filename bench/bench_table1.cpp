//===-- bench_table1.cpp - Table 1: benchmark characteristics -------------------==//
//
// Regenerates the paper's Table 1 (benchmark characteristics: classes,
// methods, call graph nodes, SDG statements) over the eight workload
// models, and times the pipeline stages the paper reports as cheap
// (call graph + pointer analysis under 5 minutes; SDG construction
// demand-driven).
//
// Paper reference points (much larger Java programs, 2006 hardware):
//   nanoxml/jtopas ~500 methods, ant/javac 1600-2100 methods,
//   SDG statements 17k-71k, CG nodes > methods due to cloning.
// Expected shape here: same ordering (javac largest, nanoxml/jtopas
// smallest), CG nodes > reachable methods on every row.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "lang/Lower.h"
#include "pta/PointsTo.h"
#include "sdg/SDG.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace tsl;

namespace {

const WorkloadProgram &nanoxmlPadded() {
  static WorkloadProgram W =
      padWorkload(debuggingCases().front().Prog, "B1", 10, 6);
  return W;
}

void BM_Frontend(benchmark::State &State) {
  const WorkloadProgram &W = nanoxmlPadded();
  for (auto _ : State) {
    DiagnosticEngine Diag;
    auto P = compileThinJ(W.Source, Diag);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_Frontend)->Unit(benchmark::kMillisecond);

void BM_PointsTo(benchmark::State &State) {
  const WorkloadProgram &W = nanoxmlPadded();
  DiagnosticEngine Diag;
  auto P = compileThinJ(W.Source, Diag);
  for (auto _ : State) {
    auto PTA = runPointsTo(*P);
    benchmark::DoNotOptimize(PTA);
  }
}
BENCHMARK(BM_PointsTo)->Unit(benchmark::kMillisecond);

void BM_SDGBuild(benchmark::State &State) {
  const WorkloadProgram &W = nanoxmlPadded();
  DiagnosticEngine Diag;
  auto P = compileThinJ(W.Source, Diag);
  auto PTA = runPointsTo(*P);
  for (auto _ : State) {
    auto G = buildSDG(*P, *PTA, nullptr);
    benchmark::DoNotOptimize(G);
  }
}
BENCHMARK(BM_SDGBuild)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: Table 1 ===\n\n");
  printf("%s\n", formatTable1(runTable1()).c_str());

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
