//===-- BenchGuard.h - Baseline-recording guard for benchmarks ---------------==//
//
// The committed BENCH_*.json baselines must come from an optimized
// build: Debug timings are off by an order of magnitude and then read
// as regressions (or mask real ones) in every later comparison. The
// CMake warning at configure time is advisory only — this is the
// enforcement point. Every bench main() calls guardBenchmarkBaseline()
// before benchmark::Initialize(); in a Debug build (NDEBUG undefined)
// any --benchmark_out request is refused at runtime with a hard error,
// while plain interactive runs stay allowed.
//
//===----------------------------------------------------------------------===//

#ifndef THINSLICER_BENCH_BENCHGUARD_H
#define THINSLICER_BENCH_BENCHGUARD_H

#include <cstdio>
#include <cstring>

/// Returns true when this invocation may proceed. False means a JSON
/// baseline was requested from a Debug binary; the caller must exit
/// nonzero without running any benchmark (so CI scripts cannot commit
/// the file a partial run would have produced).
inline bool guardBenchmarkBaseline(int argc, char **argv) {
#ifdef NDEBUG
  (void)argc;
  (void)argv;
  return true;
#else
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    // --benchmark_out=FILE and "--benchmark_out FILE" both request a
    // baseline; --benchmark_out_format alone does not write anything.
    if (strncmp(Arg, "--benchmark_out", 15) == 0 &&
        strncmp(Arg, "--benchmark_out_format", 22) != 0) {
      fprintf(stderr,
              "error: refusing to write a benchmark baseline from a Debug "
              "build.\nDebug timings are not comparable to the committed "
              "BENCH_*.json numbers; rebuild with -DCMAKE_BUILD_TYPE=Release "
              "and re-run.\n");
      return false;
    }
  }
  return true;
#endif
}

#endif // THINSLICER_BENCH_BENCHGUARD_H
