//===-- bench_snapshot.cpp - Cross-process warm start vs cold build -------------==//
//
// The tentpole claim of the snapshot PR: a process that warm-starts
// from an on-disk snapshot answers its first slice query >= 5x faster
// than a process that rebuilds the pad-12 workload cold. Both
// configurations pay session construction and the slice itself; the
// warm path pays deserialization (decode-by-replay of the program,
// points-to row tables, mod-ref rows, and the SDG) instead of the
// compile/PTA/mod-ref/SDG pipeline.
//
//   ./bench/bench_snapshot
//   ./bench/bench_snapshot --benchmark_out=BENCH_snapshot.json
//                          --benchmark_out_format=json
//
// The differential tests (tests/snapshot_test.cpp) prove both
// configurations produce byte-identical slices; this benchmark only
// measures the latency gap.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Slicer.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace tsl;

namespace {

/// Same workload as bench_incremental: the largest pad of the
/// scalability sweep, so the cold build being avoided is the
/// realistic one.
constexpr unsigned PAD = 12;

const std::string &workloadSource() {
  static const std::string Source =
      padWorkload(debuggingCases().front().Prog, "BS", PAD, 6).Source;
  return Source;
}

std::string snapshotPath() {
  return (std::filesystem::temp_directory_path() / "bench_snapshot.tslsnap")
      .string();
}

const Instr *lastSeed(AnalysisSession &S) {
  const Instr *Seed = nullptr;
  for (const auto &M : S.program()->methods())
    for (const auto &BB : M->blocks())
      for (const auto &I : BB->instrs())
        if (I->loc().Line)
          Seed = I.get();
  return Seed;
}

/// First-query latency, cold: a fresh process compiles and analyzes
/// everything.
double coldMs() {
  auto T0 = std::chrono::steady_clock::now();
  AnalysisSession S(workloadSource());
  const SliceResult *R = S.sliceBackwardCached(lastSeed(S), SliceMode::Thin);
  benchmark::DoNotOptimize(R);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// First-query latency, warm: a fresh process loads the snapshot and
/// slices against the decoded artifacts. \p LoadPartMs reports the
/// deserialization share of the total.
double warmMs(bool &LoadOk, double *LoadPartMs = nullptr) {
  auto T0 = std::chrono::steady_clock::now();
  AnalysisSession S(workloadSource());
  LoadOk = S.loadSnapshot(snapshotPath()).isOk();
  auto TLoad = std::chrono::steady_clock::now();
  const SliceResult *R = S.sliceBackwardCached(lastSeed(S), SliceMode::Thin);
  benchmark::DoNotOptimize(R);
  auto T1 = std::chrono::steady_clock::now();
  if (LoadPartMs)
    *LoadPartMs = std::chrono::duration<double, std::milli>(TLoad - T0).count();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

void BM_WarmStartSlice(benchmark::State &State) {
  bool LoadOk = true, AllOk = true;
  for (auto _ : State) {
    benchmark::DoNotOptimize(warmMs(LoadOk));
    AllOk = AllOk && LoadOk;
  }
  State.counters["load_ok"] = AllOk ? 1 : 0;
}
BENCHMARK(BM_WarmStartSlice)->Unit(benchmark::kMillisecond);

void BM_ColdBuildSlice(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(coldMs());
}
BENCHMARK(BM_ColdBuildSlice)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Persistent snapshots: warm start vs cold build ===\n\n");

  // Write the snapshot the warm configuration loads.
  {
    AnalysisSession Saver(workloadSource());
    Status St = Saver.saveSnapshot(snapshotPath());
    if (!St.isOk()) {
      fprintf(stderr, "error: cannot save snapshot: %s\n", St.str().c_str());
      return 1;
    }
  }

  // Min-of-32 head-to-head, one warm-up each: min (not median)
  // because both paths do fixed work and the noise is one-sided
  // scheduler jitter — on a shared 1-core box even the min of a
  // small sample wobbles, so the sample is deliberately generous.
  (void)coldMs();
  std::vector<double> Cold;
  for (int I = 0; I != 32; ++I)
    Cold.push_back(coldMs());

  bool LoadOk = false, AllOk = true;
  (void)warmMs(LoadOk);
  AllOk = LoadOk;
  std::vector<double> Warm, WarmLoad;
  for (int I = 0; I != 32; ++I) {
    double LoadPart = 0;
    Warm.push_back(warmMs(LoadOk, &LoadPart));
    WarmLoad.push_back(LoadPart);
    AllOk = AllOk && LoadOk;
  }
  if (!AllOk) {
    fprintf(stderr, "error: a snapshot load fell back to a cold rebuild\n");
    return 1;
  }

  const double ColdMin = *std::min_element(Cold.begin(), Cold.end());
  const double WarmMin = *std::min_element(Warm.begin(), Warm.end());
  const double Speedup = WarmMin > 0 ? ColdMin / WarmMin : 0;
  const auto Size = std::filesystem::file_size(snapshotPath());
  printf("workload: nanoxml pad %u, first slice query per process\n", PAD);
  printf("cold build:  %8.3f ms build-to-slice\n", ColdMin);
  printf("warm start:  %8.3f ms load-to-slice (%llu-byte snapshot, "
         "%.3f ms deserialization)\n",
         WarmMin, static_cast<unsigned long long>(Size),
         *std::min_element(WarmLoad.begin(), WarmLoad.end()));
  printf("speedup: %.2fx %s\n\n", Speedup,
         Speedup >= 5.0 ? "(>= 5x target met)" : "(below 5x target!)");

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove(snapshotPath());
  return 0;
}
