//===-- bench_alias_depth.cpp - Aliasing-hierarchy ablation (Sec. 4.1) ----------==//
//
// Ablation for the paper's hierarchical expansion design: how many
// statements enter the slice as aliasing-explanation levels are added
// (level 0 = plain thin slice, level 1 = the paper's nanoxml-5
// configuration, large levels approach the data-dependence part of a
// traditional slice). The paper's claim is that "very few explainers
// are needed to accomplish typical tasks" — i.e., the usefulness lives
// at levels 0-1 while the statement cost of each further level grows.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Expansion.h"
#include "slicer/Slicer.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace tsl;

namespace {

/// One warm session for every benchmark in this binary; the raw
/// pointers borrow from it.
struct Built {
  std::unique_ptr<AnalysisSession> S;
  Program *P = nullptr;
  PointsToResult *PTA = nullptr;
  SDG *G = nullptr;
  const Instr *Seed = nullptr;
  unsigned BugLine = 0;
};

Built &builtOnce() {
  static Built B = [] {
    Built Out;
    // The nanoxml model; the aliasing bug (nanoxml-5) is the seed.
    for (const BugCase &Case : debuggingCases()) {
      if (Case.Id != "nanoxml-5")
        continue;
      Out.S = std::make_unique<AnalysisSession>(Case.Prog.Source);
      Out.P = Out.S->program();
      Out.PTA = Out.S->pointsTo();
      Out.G = Out.S->sdg();
      Out.Seed = instrAtLine(*Out.P, Case.Prog.markerLine(Case.SeedMarker));
      Out.BugLine = Case.Prog.markerLine(Case.DesiredMarkers.front());
    }
    return Out;
  }();
  return B;
}

void BM_AliasDepth(benchmark::State &State) {
  Built &B = builtOnce();
  ThinExpansion Exp(*B.G, *B.PTA);
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    SliceResult S = Exp.thinSliceWithAliasDepth(B.Seed, Depth);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_AliasDepth)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: aliasing-hierarchy ablation ===\n\n");
  Built &B = builtOnce();
  ThinExpansion Exp(*B.G, *B.PTA);
  SliceResult Trad = sliceBackward(*B.G, B.Seed, SliceMode::Traditional);
  SourceLine Bug = sourceLineAt(*B.P, B.BugLine);

  printf("nanoxml-5 seed; traditional slice = %zu source lines\n\n",
         Trad.sourceLines().size());
  printf("alias-depth  slice-lines  contains-bug\n");
  for (unsigned Depth = 0; Depth <= 4; ++Depth) {
    SliceResult S = Exp.thinSliceWithAliasDepth(B.Seed, Depth);
    printf("%11u %12zu %13s\n", Depth, S.sourceLines().size(),
           S.containsLine(Bug.M, Bug.Line) ? "yes" : "no");
  }
  printf("\n(each level exposes one more layer of the container "
         "nesting — HashMap field, bucket array, entry chain — until "
         "the clearing store appears; the inspection-time one-level "
         "mode of Sec. 6.2 applies the exposure at every heap access "
         "met during traversal and therefore finds the bug without "
         "enumerating levels. Statement cost grows with every level, "
         "the paper's argument for on-demand expansion.)\n\n");

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
