//===-- bench_inspection_strategy.cpp - BFS-vs-DFS threat to validity -----------==//
//
// The paper's "Threats to Validity" (Sec. 6.1) flags its breadth-first
// exploration model: "If most developers are able to very quickly
// prune statements ... then the BFS metric would overstate the
// advantage of thin slicing." This bench quantifies the sensitivity:
// the full Table 2 and Table 3 experiments rerun under a depth-first
// exploration order, and the thin-vs-traditional totals are compared.
//
// Expected shape: the absolute counts shift (DFS can get lucky or
// lost), but thin slicing keeps its advantage under both orders — the
// paper's conclusion does not hinge on the BFS assumption.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace tsl;

namespace {

struct Totals {
  unsigned Thin = 0;
  unsigned Trad = 0;
  unsigned Found = 0;
  unsigned Rows = 0;
};

Totals totalsOf(const std::vector<InspectionRow> &Rows) {
  Totals T;
  for (const InspectionRow &Row : Rows) {
    if (!Row.SlicingUseful)
      continue;
    T.Thin += Row.Thin;
    T.Trad += Row.Trad;
    T.Found += Row.FoundAllThin && Row.FoundAllTrad;
    ++T.Rows;
  }
  return T;
}

void report(const char *Name, const Totals &Bfs, const Totals &Dfs) {
  printf("%s:\n", Name);
  printf("  BFS: thin=%u trad=%u ratio=%.2f (found %u/%u)\n", Bfs.Thin,
         Bfs.Trad, Bfs.Thin ? double(Bfs.Trad) / Bfs.Thin : 0, Bfs.Found,
         Bfs.Rows);
  printf("  DFS: thin=%u trad=%u ratio=%.2f (found %u/%u)\n\n", Dfs.Thin,
         Dfs.Trad, Dfs.Thin ? double(Dfs.Trad) / Dfs.Thin : 0, Dfs.Found,
         Dfs.Rows);
}

void BM_Table2DFS(benchmark::State &State) {
  for (auto _ : State) {
    auto Rows = runDebuggingExperiment(InspectionStrategy::DFS);
    benchmark::DoNotOptimize(Rows);
  }
}
BENCHMARK(BM_Table2DFS)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: inspection-strategy ablation "
         "(threats to validity, Sec. 6.1) ===\n\n");
  report("Table 2 (debugging)",
         totalsOf(runDebuggingExperiment(InspectionStrategy::BFS)),
         totalsOf(runDebuggingExperiment(InspectionStrategy::DFS)));
  report("Table 3 (tough casts)",
         totalsOf(runToughCastExperiment(InspectionStrategy::BFS)),
         totalsOf(runToughCastExperiment(InspectionStrategy::DFS)));

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
