//===-- bench_scalability.cpp - Sec. 6.1 scalability claims ---------------------==//
//
// Reproduces the scalability observations of paper Section 6.1:
//
//  - context-insensitive thin/traditional slicing is graph
//    reachability and costs microseconds — negligible next to the
//    prerequisite pointer analysis;
//  - the context-sensitive representation's heap parameters explode:
//    heap formal/actual nodes and summary edges grow super-linearly
//    with program size (the paper's full SDG exceeded 10M nodes and
//    exhausted memory on large benchmarks; a commercial slicer hits
//    the same wall).
//
// The sweep pads the nanoxml model with growing amounts of reachable
// library code and reports sizes and times per configuration.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Workload.h"
#include "pipeline/Session.h"
#include "slicer/Slicer.h"

#include "BenchGuard.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace tsl;

namespace {

/// One warm session for every benchmark in this binary; the raw
/// pointers borrow from it.
struct Built {
  std::unique_ptr<AnalysisSession> S;
  SDG *G = nullptr;
  const Instr *Seed = nullptr;
};

Built &builtOnce() {
  static Built B = [] {
    Built Out;
    WorkloadProgram W = padWorkload(debuggingCases().front().Prog, "SB", 8, 6);
    Out.S = std::make_unique<AnalysisSession>(W.Source);
    Out.G = Out.S->sdg();
    Out.Seed = instrAtLine(*Out.S->program(), W.markerLine("n1-seed"));
    return Out;
  }();
  return B;
}

void BM_ThinSlice(benchmark::State &State) {
  Built &B = builtOnce();
  for (auto _ : State) {
    SliceResult S = sliceBackward(*B.G, B.Seed, SliceMode::Thin);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_ThinSlice)->Unit(benchmark::kMicrosecond);

void BM_TraditionalSlice(benchmark::State &State) {
  Built &B = builtOnce();
  for (auto _ : State) {
    SliceResult S = sliceBackward(*B.G, B.Seed, SliceMode::Traditional);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_TraditionalSlice)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  printf("=== Thin Slicing reproduction: scalability (Sec. 6.1) ===\n\n");
  auto Rows = runScalability({0, 2, 4, 8, 12});
  printf("%s\n", formatScalability(Rows).c_str());
  if (Rows.size() >= 2) {
    const ScalabilityRow &First = Rows.front();
    const ScalabilityRow &Last = Rows.back();
    double StmtGrowth =
        static_cast<double>(Last.SDGStmts) / First.SDGStmts;
    double HeapGrowth = static_cast<double>(Last.CSHeapParamNodes) /
                        First.CSHeapParamNodes;
    double SummaryGrowth =
        static_cast<double>(Last.SummaryEdges) / First.SummaryEdges;
    printf("growth %ux statements -> %.1fx CS heap-parameter nodes, "
           "%.1fx summary edges\n",
           static_cast<unsigned>(StmtGrowth), HeapGrowth, SummaryGrowth);
    printf("(the paper's Sec. 6.1 bottleneck: heap parameter passing "
           "explodes; CI thin slicing stays negligible)\n\n");
  }

  if (!guardBenchmarkBaseline(argc, argv))
    return 2;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
